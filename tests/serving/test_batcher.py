"""Dynamic batcher unit tests (no processes, no server thread)."""

import threading
import time

import numpy as np
import pytest

from repro.core.inference import split_batch
from repro.serving.batcher import (
    BatchingConfig,
    DynamicBatcher,
    QueueFullError,
    RequestError,
    ServedFuture,
)
from repro.serving.telemetry import RequestTelemetry


def make_future(request_id, samples=1):
    x = np.zeros((samples, 3, 8, 8), dtype=np.float32)
    telemetry = RequestTelemetry(request_id=request_id, num_samples=samples,
                                 enqueued_at=time.perf_counter())
    return ServedFuture(request_id, x, telemetry)


class TestBatchFormation:
    def test_coalesces_pending_requests_in_fifo_order(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch_samples=8,
                                                max_wait_s=0.01))
        for i in range(3):
            batcher.submit(make_future(i))
        batch = batcher.next_batch()
        assert [f.request_id for f in batch.requests] == [0, 1, 2]
        assert batch.num_samples == 3
        assert batch.concatenated().shape[0] == 3

    def test_max_batch_samples_splits_backlog(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch_samples=2,
                                                max_wait_s=0.01))
        for i in range(3):
            batcher.submit(make_future(i))
        first = batcher.next_batch()
        second = batcher.next_batch()
        assert [f.request_id for f in first.requests] == [0, 1]
        assert [f.request_id for f in second.requests] == [2]

    def test_deadline_flushes_partial_batch(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch_samples=64,
                                                max_wait_s=0.02))
        batcher.submit(make_future(0))
        start = time.perf_counter()
        batch = batcher.next_batch()
        elapsed = time.perf_counter() - start
        assert len(batch.requests) == 1
        assert elapsed < 1.0            # flushed by deadline, not starvation

    def test_oversized_request_dispatches_alone(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch_samples=4,
                                                max_wait_s=0.01))
        batcher.submit(make_future(0, samples=9))
        batcher.submit(make_future(1, samples=1))
        first = batcher.next_batch()
        assert [f.request_id for f in first.requests] == [0]
        assert first.num_samples == 9

    def test_late_arrival_joins_open_batch(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch_samples=8,
                                                max_wait_s=0.2))
        batcher.submit(make_future(0))

        def late_submit():
            time.sleep(0.03)
            batcher.submit(make_future(1))

        thread = threading.Thread(target=late_submit)
        thread.start()
        batch = batcher.next_batch()
        thread.join()
        assert [f.request_id for f in batch.requests] == [0, 1]


class TestAdmissionAndShutdown:
    def test_queue_capacity_rejects_with_typed_error(self):
        batcher = DynamicBatcher(BatchingConfig(queue_capacity=2))
        batcher.submit(make_future(0))
        batcher.submit(make_future(1))
        with pytest.raises(QueueFullError):
            batcher.submit(make_future(2))

    def test_close_unblocks_next_batch_and_rejects_submits(self):
        batcher = DynamicBatcher(BatchingConfig())
        batcher.close()
        assert batcher.next_batch(poll_interval=0.01) is None
        with pytest.raises(RequestError):
            batcher.submit(make_future(0))

    def test_drain_returns_leftovers(self):
        batcher = DynamicBatcher(BatchingConfig())
        batcher.submit(make_future(0))
        batcher.submit(make_future(1))
        assert [f.request_id for f in batcher.drain()] == [0, 1]
        assert batcher.pending() == 0


class TestServedFuture:
    def test_result_blocks_until_set(self):
        future = make_future(0)
        threading.Timer(0.02, future.set_result, (np.array([1]),)).start()
        assert future.result(timeout=5.0) == np.array([1])
        assert future.done()

    def test_error_propagates(self):
        future = make_future(0)
        future.set_error(RequestError("boom"))
        with pytest.raises(RequestError, match="boom"):
            future.result(timeout=1.0)
        assert future.telemetry.error == "boom"

    def test_timeout_raises(self):
        with pytest.raises(TimeoutError):
            make_future(0).result(timeout=0.01)


class TestSplitBatch:
    def test_round_trip(self):
        data = np.arange(10)
        chunks = split_batch(data, [3, 1, 6])
        assert [len(c) for c in chunks] == [3, 1, 6]
        np.testing.assert_array_equal(np.concatenate(chunks), data)

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            split_batch(np.arange(5), [2, 2])
