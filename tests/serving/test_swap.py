"""Rolling-swap tests: zero-downtime worker replacement."""

import threading
import time

import numpy as np
import pytest

from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import WorkerSpec
from repro.planning import plan_demo_system
from repro.serving import InferenceServer, build_demo_system
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def system():
    return build_demo_system(num_workers=2, train_fusion=True,
                             fusion_epochs=2, transport="inprocess")


def replacement_spec(system, index: int, worker_id: str) -> WorkerSpec:
    return WorkerSpec.from_model(
        worker_id, system.models[index], "vit", flops_per_sample=1e6,
        device=DeviceModel(device_id=worker_id, macs_per_second=1e12),
        link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0))


def test_swap_retargets_slot_and_retires_old(system):
    x = np.random.default_rng(0).normal(
        size=(4, *system.input_shape)).astype(np.float32)
    ref = system.local_fused_labels(x)
    with InferenceServer(system.make_cluster(), system.fusion) as server:
        np.testing.assert_array_equal(server.infer(x), ref)
        new_id = server.swap_worker("w0", replacement_spec(system, 0,
                                                           "w0@v2"))
        assert new_id == "w0@v2"
        assert server.hosting()["w0"] == "w0@v2"
        assert server.worker_health()["w0"] == "retired by rolling swap"
        # Slots are immutable; only the hosting changed.
        assert server.slots == ["w0", "w1"]
        np.testing.assert_array_equal(server.infer(x), ref)
        assert server.stats().failed == 0


def test_swap_under_load_drops_nothing(system):
    x = np.random.default_rng(1).normal(
        size=(2, *system.input_shape)).astype(np.float32)
    ref = system.local_fused_labels(x)
    with InferenceServer(system.make_cluster(), system.fusion) as server:
        stop = threading.Event()
        errors: list[Exception] = []

        def client():
            while not stop.is_set():
                try:
                    server.infer(x, timeout=10.0)
                except Exception as exc:   # pragma: no cover - failure path
                    errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.1)
            server.swap_worker("w0", replacement_spec(system, 0, "w0@v2"))
            time.sleep(0.1)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        post = server.infer(x, timeout=10.0)
        report = server.stats()
    assert not errors
    assert report.failed == 0
    # Zero-downtime: no batch was ever fused with a zero-filled slot.
    assert report.degraded_requests == 0
    np.testing.assert_array_equal(post, ref)


def test_swap_rejects_wrong_feature_dim(system):
    from repro.models.vit import ViTConfig, VisionTransformer

    wide = VisionTransformer(
        ViTConfig(image_size=8, patch_size=4, num_classes=10, depth=1,
                  embed_dim=16, num_heads=2),
        rng=np.random.default_rng(0))
    with InferenceServer(system.make_cluster(), system.fusion) as server:
        bad = WorkerSpec.from_model(
            "w0@bad", wide, "vit", flops_per_sample=1e6,
            device=DeviceModel(device_id="w0@bad", macs_per_second=1e12),
            link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0))
        assert bad.feature_dim != server._slot_dims["w0"]
        with pytest.raises(ValueError, match="feature"):
            server.swap_worker("w0", bad)
        # The old worker keeps serving.
        assert server.hosting()["w0"] == "w0"
        assert server.cluster.is_alive("w0")


def test_swap_unknown_slot_raises(system):
    with InferenceServer(system.make_cluster(), system.fusion) as server:
        with pytest.raises(KeyError):
            server.swap_worker("nope", replacement_spec(system, 0, "x@v2"))


def test_swap_failed_startup_keeps_old_worker(system):
    with InferenceServer(system.make_cluster(), system.fusion) as server:
        spec = replacement_spec(system, 0, "w0@v2")
        spec.model_kind = "no-such-kind"   # worker will fail to build
        with pytest.raises(RuntimeError):
            server.swap_worker("w0", spec)
        assert server.hosting()["w0"] == "w0"
        assert server.cluster.is_alive("w0")
        x = np.random.default_rng(2).normal(
            size=(2, *system.input_shape)).astype(np.float32)
        np.testing.assert_array_equal(server.infer(x),
                                      system.local_fused_labels(x))


def test_swap_before_start_raises(system):
    server = InferenceServer(system.make_cluster(), system.fusion)
    with pytest.raises(RuntimeError, match="start"):
        server.swap_worker("w0", replacement_spec(system, 0, "w0@v2"))


def test_swap_from_store_full_cycle(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    planned = plan_demo_system(num_workers=2, seed=0, train_fusion=True,
                               fusion_epochs=2, store=store,
                               transport="inprocess")
    dataset = planned.eval_dataset()
    x = dataset.x_test.astype(np.float32)
    y = np.asarray(dataset.y_test)
    healthy = planned.local_accuracy(x, y)
    victim = planned.plan.model_ids[0]
    with planned.make_server() as server:
        new_id = planned.swap_from_store(server, victim, store)
        assert new_id == f"{victim}@swap1"
        assert server.hosting()[victim] == new_id
        served = float((server.infer(x, timeout=30.0) == y).mean())
        report = server.stats()
    assert served == healthy
    assert report.failed == 0
