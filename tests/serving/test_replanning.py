"""Online replanning through the serving layer.

A plan-booted server reacts to a worker kill by reassigning the dead
device's sub-model onto a survivor's residual capacity and spawning a
replacement worker — so accuracy recovers to the healthy level instead of
staying on the zero-fill degraded floor.  With replanning disabled the
old behaviour (permanent zero-fill) is preserved.
"""

import time

import numpy as np
import pytest

from repro.planning import DeploymentPlan, PlannedSystem, plan_demo_system


@pytest.fixture(scope="module")
def trained_system():
    # Full round trip on purpose: the served fleet is rebuilt from the
    # plan's JSON form, so these tests cover plan -> JSON -> plan -> serve.
    planned = plan_demo_system(num_workers=2, seed=0, train_fusion=True,
                               fusion_epochs=8)
    return PlannedSystem.from_plan(
        DeploymentPlan.from_json(planned.plan.to_json()))


@pytest.fixture(scope="module")
def test_set(trained_system):
    dataset = trained_system.eval_dataset()
    return dataset.x_test.astype(np.float32), np.asarray(dataset.y_test)


def wait_for_rehost(server, slot, timeout=30.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if server.hosting()[slot] != slot:
            return
        time.sleep(0.05)
    raise AssertionError(f"slot {slot} was never re-hosted")


def test_replan_recovers_accuracy_above_zero_fill_floor(trained_system,
                                                        test_set):
    x, y = test_set
    healthy = trained_system.local_accuracy(x, y)
    zero_fill_floor = trained_system.local_accuracy(x, y, zero_models=(0,))
    assert healthy > zero_fill_floor   # else recovery would be unobservable

    victim = trained_system.plan.model_ids[0]
    with trained_system.make_server() as server:
        served_healthy = float((server.infer(x, timeout=60.0) == y).mean())

        server.cluster.kill_worker(victim)
        # The next batch notices the death, serves degraded, then replans.
        server.infer(x[:4], timeout=60.0)
        wait_for_rehost(server, victim)

        recovered = float((server.infer(x, timeout=60.0) == y).mean())
        hosting = server.hosting()
        report = server.stats()

    assert served_healthy == pytest.approx(healthy)
    # Replanning restores the exact healthy accuracy (same weights, real
    # features in every slot) — strictly above the degraded floor.
    assert recovered == pytest.approx(healthy)
    assert recovered > zero_fill_floor
    assert hosting[victim] != victim
    assert report.failed == 0
    assert report.worker_health[victim] != "up"
    assert report.worker_health[hosting[victim]] == "up"
    # The system's plan was updated in place and stays valid.
    trained_system.plan.validate()
    assert trained_system.plan.history[-1]["kind"] == "replan"


def test_without_replanning_zero_fill_persists(trained_system, test_set):
    x, y = test_set
    victim = trained_system.plan.model_ids[0]
    with trained_system.make_server(replan=False) as server:
        server.cluster.kill_worker(victim)
        server.infer(x[:4], timeout=60.0)      # absorbs the death
        degraded = server.infer(x, timeout=60.0)
        hosting = server.hosting()
    np.testing.assert_array_equal(
        degraded, trained_system.local_fused_labels(x, zero_models=(0,)))
    assert hosting[victim] == victim           # nothing was re-hosted


def test_replan_reports_infeasible_and_keeps_serving(test_set):
    # A 2-worker fleet with no headroom: the orphan cannot be re-placed,
    # so the server must stay in degraded mode without crashing.
    system = plan_demo_system(num_workers=2, seed=0, train_fusion=True,
                              fusion_epochs=8)
    # Shrink every device budget to exactly its own sub-model's footprint.
    import dataclasses

    plan = system.plan
    tight = []
    for device in plan.devices:
        hosted = [plan.submodel(m) for m in plan.models_on(device.device_id)]
        tight.append(dataclasses.replace(
            device,
            memory_bytes=sum(m.size_bytes for m in hosted),
            energy_flops=sum(m.flops_per_sample * plan.num_samples
                             for m in hosted)))
    plan.devices = tight
    x, y = test_set
    victim = plan.model_ids[0]
    with system.make_server() as server:
        server.cluster.kill_worker(victim)
        server.infer(x[:4], timeout=60.0)
        time.sleep(0.3)                        # give a failed replan time
        degraded = server.infer(x, timeout=60.0)
        hosting = server.hosting()
    np.testing.assert_array_equal(
        degraded, system.local_fused_labels(x, zero_models=(0,)))
    assert hosting[victim] == victim
    assert system.plan.history == []           # no replan event recorded
