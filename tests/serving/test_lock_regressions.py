"""Regression tests for the hosting-state races the static analyzer
found (PR 8): ``start()`` now initializes hosting under
``_hosting_lock`` and readers always see a complete map."""

import threading

import numpy as np

import pytest

from repro.serving import (
    BatchingConfig,
    InferenceServer,
    ServerConfig,
    build_demo_system,
)


@pytest.fixture(scope="module")
def system():
    return build_demo_system(num_workers=2, transport="inprocess")


def make_server(system):
    return InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(max_batch_samples=8,
                                             max_wait_s=0.002)))


class TestHostingLockDiscipline:
    def test_restart_resets_hosting_atomically(self, system):
        server = make_server(system)
        with server:
            slots = list(server.hosting())
            # Fake a prior re-host so the restart has something to reset.
            with server._hosting_lock:
                server._hosting[slots[0]] = "stale-worker"
                server._replan_attempted.add("stale-worker")
        server.start()
        try:
            assert server.hosting() == {slot: slot for slot in slots}
            assert server._replan_attempted == set()
        finally:
            server.stop()

    def test_concurrent_hosting_reads_never_see_partial_state(self, system):
        """Hammer ``hosting()`` from a reader thread through several
        restarts; every snapshot must be a complete slot map."""
        server = make_server(system)
        server.start()
        slots = set(server.hosting())
        stop = threading.Event()
        bad: list[dict] = []

        def reader():
            while not stop.is_set():
                snapshot = server.hosting()
                if set(snapshot) != slots:
                    bad.append(snapshot)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(5):
                server.stop()
                server.start()
            x = np.random.default_rng(0).normal(
                size=(2, *system.input_shape)).astype(np.float32)
            server.infer(x)
        finally:
            stop.set()
            thread.join(timeout=10)
            server.stop()
        assert not bad, f"partial hosting snapshots observed: {bad[:3]}"
