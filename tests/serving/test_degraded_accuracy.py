"""Degraded fusion keeps a *trained* system at sane accuracy.

The other serving tests pin exact equivalence with the local zero-fill
path; this one checks the semantic claim from the paper's fault-tolerance
story: with a trained fusion MLP, killing a worker degrades accuracy
gracefully instead of collapsing the fleet.  Everything is seeded, so the
accuracies are deterministic; the floors are set far above the 10-class
chance level (0.1).
"""

import numpy as np
import pytest

from repro.data import cifar10_like
from repro.serving import build_demo_system


@pytest.fixture(scope="module")
def trained_system():
    return build_demo_system(num_workers=2, image_size=8, train_fusion=True,
                             fusion_epochs=15, seed=0)


@pytest.fixture(scope="module")
def test_set():
    dataset = cifar10_like(image_size=8, train_per_class=48,
                           test_per_class=16, noise_std=0.3, seed=0)
    return dataset.x_test.astype(np.float32), np.asarray(dataset.y_test)


def test_served_accuracy_degrades_gracefully(trained_system, test_set):
    x, y = test_set
    with trained_system.make_cluster() as cluster:
        healthy, _ = cluster.infer_fused(x, trained_system.fusion)
        healthy_acc = float((healthy == y).mean())

        cluster.kill_worker("w0")
        # The sync path refuses (typed failure) ...
        from repro.edge.runtime import WorkerFailure

        with pytest.raises(WorkerFailure):
            cluster.infer_fused(x, trained_system.fusion, timeout=10.0)

    # ... while the serving layer degrades: zero-filled w0 features.
    from repro.serving import InferenceServer

    with InferenceServer(trained_system.make_cluster(),
                         trained_system.fusion) as server:
        server.cluster.kill_worker("w0")
        degraded = server.infer(x, timeout=60.0)
        report = server.stats()
    degraded_acc = float((degraded == y).mean())

    np.testing.assert_array_equal(
        degraded, trained_system.local_fused_labels(x, zero_workers=(0,)))
    assert healthy_acc >= 0.2                  # well above 10-class chance
    assert degraded_acc >= 0.15                # degraded, but still sane
    assert report.failed == 0
    assert report.worker_health["w0"] != "up"
