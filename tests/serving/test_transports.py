"""The serving layer end to end over every transport substrate.

One parametrized suite — if a transport can't serve, degrade, and
account wire bytes exactly like the others, it fails here.
"""

import time

import numpy as np
import pytest

from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    run_load,
)

X = np.random.default_rng(3).normal(size=(6, 3, 8, 8)).astype(np.float32)


def make_server(transport, codec="raw32", num_workers=2):
    system = build_demo_system(num_workers=num_workers, transport=transport,
                               codec=codec)
    server = InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(max_batch_samples=16,
                                             max_wait_s=0.002),
                     worker_timeout_s=10.0))
    return system, server


@pytest.mark.parametrize("transport", ["inprocess", "multiprocess", "tcp"])
class TestServingAcrossTransports:
    def test_served_labels_match_local_reference(self, transport):
        system, server = make_server(transport)
        with server:
            labels = server.infer(X)
        assert (labels == system.local_fused_labels(X)).all()

    def test_closed_loop_run_completes_cleanly(self, transport):
        system, server = make_server(transport)
        with server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=40, mode="closed",
                                            concurrency=4))
        assert result.completed == 40
        assert result.errors == 0 and result.dropped == 0
        assert result.report.wire_bytes_in > 0
        assert result.report.wire_bytes_out > 0

    def test_kill_degrades_instead_of_failing(self, transport):
        system, server = make_server(transport)
        with server:
            server.infer(X)            # warm: all workers answered once
            victim = system.specs[0].worker_id
            server.cluster.kill_worker(victim)
            deadline = time.monotonic() + 5.0
            while server.cluster.is_alive(victim) \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            degraded = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                future = server.submit(X)
                future.result(timeout=15.0)
                if future.telemetry.degraded:
                    degraded = future.telemetry
                    break
            assert degraded is not None, "kill never surfaced as degraded"
            assert victim in degraded.workers_down
        health = server.worker_health()
        assert sum(1 for status in health.values() if status != "up") == 1


class TestWireTelemetry:
    def test_request_bytes_match_codec_exactly(self):
        # 2 workers x 6 samples x 8 features: raw32 = 4 B/value.
        system, server = make_server("inprocess", codec="raw32")
        with server:
            future = server.submit(X)
            future.result(timeout=15.0)
        assert future.telemetry.bytes_in == 2 * 6 * 8 * 4
        assert future.telemetry.bytes_out == 2 * X.nbytes

    def test_q8_reports_fewer_wire_bytes_than_raw32(self):
        wire = {}
        for codec in ("raw32", "q8"):
            system, server = make_server("inprocess", codec=codec)
            with server:
                run_load(server, system.input_shape,
                         LoadgenConfig(num_requests=30, mode="closed",
                                       concurrency=4))
                report = server.stats()
            wire[codec] = report.wire_bytes_in
            assert report.effective_bw_mbps > 0
        assert wire["q8"] < wire["raw32"]

    def test_float64_request_does_not_inflate_bytes_out(self):
        system, server = make_server("inprocess")
        with server:
            f32 = server.submit(X)
            f32.result(timeout=15.0)
            f64 = server.submit(X.astype(np.float64))
            f64.result(timeout=15.0)
        assert f64.telemetry.bytes_out == f32.telemetry.bytes_out
