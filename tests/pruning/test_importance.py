"""Importance-scoring tests: KL LOO behaves like an ablation study."""

import numpy as np
import pytest

from repro.models.vit import ViTConfig, VisionTransformer
from repro.pruning.importance import (
    Probe,
    _zeroed,
    kl_attention_importance,
    kl_ffn_importance,
    kl_residual_channel_importance,
    magnitude_attention_importance,
    magnitude_ffn_importance,
    magnitude_residual_channel_importance,
)

RNG = np.random.default_rng(0)


def make_model(embed_dim=8, num_heads=2, depth=1):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3,
                    depth=depth, embed_dim=embed_dim, num_heads=num_heads)
    return VisionTransformer(cfg, rng=np.random.default_rng(1))


def make_probe(model, n=8):
    x = RNG.normal(size=(n, 3, 8, 8)).astype(np.float32)
    return Probe.from_model(model, x)


class TestZeroedContext:
    def test_restores_values(self):
        model = make_model()
        param = model.patch_embed.proj.weight
        before = param.data.copy()
        with _zeroed([(param, (0,))]):
            assert (param.data[0] == 0).all()
        np.testing.assert_array_equal(param.data, before)

    def test_restores_on_exception(self):
        model = make_model()
        param = model.patch_embed.proj.bias
        before = param.data.copy()
        with pytest.raises(RuntimeError):
            with _zeroed([(param, (slice(None),))]):
                raise RuntimeError("boom")
        np.testing.assert_array_equal(param.data, before)


class TestKLScores:
    def test_residual_shape_and_nonnegative(self):
        model = make_model()
        scores = kl_residual_channel_importance(model, make_probe(model))
        assert scores.shape == (8,)
        assert (scores >= 0).all()

    def test_attention_shape(self):
        model = make_model()
        scores = kl_attention_importance(model, make_probe(model))
        assert scores.shape == (1, 2, 4)
        assert (scores >= 0).all()

    def test_ffn_shape(self):
        model = make_model()
        scores = kl_ffn_importance(model, make_probe(model))
        assert scores.shape == (1, 32)
        assert (scores >= 0).all()

    def test_dead_ffn_unit_scores_zero(self):
        # A unit whose fc2 column is already zero contributes nothing:
        # its removal KL must be ~0 while live units score higher.
        model = make_model()
        for block in model.blocks:
            block.mlp.fc2.weight.data[:, 0] = 0.0
        scores = kl_ffn_importance(model, make_probe(model))
        assert scores[0, 0] == pytest.approx(0.0, abs=1e-8)
        assert scores[0].max() > scores[0, 0]

    def test_dead_attention_unit_scores_zero(self):
        model = make_model()
        a = model.config.resolved_attn_dim
        for block in model.blocks:
            # Zero q,k,v rows and proj column of unit (head 0, dim 0).
            for row in (0, a, 2 * a):
                block.attn.qkv.weight.data[row] = 0.0
                block.attn.qkv.bias.data[row] = 0.0
            block.attn.proj.weight.data[:, 0] = 0.0
        scores = kl_attention_importance(model, make_probe(model))
        assert scores[0, 0, 0] == pytest.approx(0.0, abs=1e-8)

    def test_scores_change_with_probe(self):
        model = make_model()
        s1 = kl_residual_channel_importance(model, make_probe(model, n=4))
        x2 = RNG.normal(size=(4, 3, 8, 8)).astype(np.float32) * 3.0
        s2 = kl_residual_channel_importance(model, Probe.from_model(model, x2))
        assert not np.allclose(s1, s2)


class TestMagnitudeScores:
    def test_residual_shape(self):
        scores = magnitude_residual_channel_importance(make_model())
        assert scores.shape == (8,)
        assert (scores > 0).all()

    def test_attention_shape(self):
        scores = magnitude_attention_importance(make_model())
        assert scores.shape == (1, 2, 4)

    def test_ffn_shape(self):
        scores = magnitude_ffn_importance(make_model())
        assert scores.shape == (1, 32)

    def test_zeroed_unit_has_zero_magnitude(self):
        model = make_model()
        a = model.config.resolved_attn_dim
        block = model.blocks[0]
        for row in (0, a, 2 * a):
            block.attn.qkv.weight.data[row] = 0.0
        block.attn.proj.weight.data[:, 0] = 0.0
        scores = magnitude_attention_importance(model)
        assert scores[0, 0, 0] == pytest.approx(0.0)


class TestProbe:
    def test_reference_is_distribution(self):
        model = make_model()
        probe = make_probe(model)
        np.testing.assert_allclose(probe.reference.sum(axis=-1), 1.0, rtol=1e-4)
        assert (probe.reference >= 0).all()
