"""Algorithm 2 pipeline tests (class-wise sub-model pruning)."""

import numpy as np
import pytest

from repro.core.training import evaluate
from repro.pruning.pipeline import PruneConfig, prune_submodel
from repro.pruning.structured import pruned_dims

FAST = PruneConfig(probe_size=8, head_adapt_epochs=1, stage_finetune_epochs=0,
                   retrain_epochs=1, backend="magnitude")


class TestPruneSubmodel:
    def test_output_config_matches_schedule(self, trained_tiny_vit, tiny_dataset):
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, [0, 1, 2],
                             hp=2, config=FAST)
        dims = pruned_dims(trained_tiny_vit.config, 2)
        assert sub.model.config.embed_dim == dims["embed_dim"]
        assert sub.model.config.resolved_attn_dim == dims["attn_dim"]
        assert sub.model.config.resolved_mlp_hidden == dims["mlp_hidden"]

    def test_head_matches_class_subset(self, trained_tiny_vit, tiny_dataset):
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, [3, 7],
                             hp=1, config=FAST)
        assert sub.model.config.num_classes == 2
        assert sub.classes == [3, 7]

    def test_history_records_stages(self, trained_tiny_vit, tiny_dataset):
        cfg = PruneConfig(probe_size=8, head_adapt_epochs=1,
                          stage_finetune_epochs=1, retrain_epochs=1,
                          backend="magnitude")
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, [0, 1], hp=1,
                             config=cfg)
        for key in ("head_adapt_acc", "stage1_finetune_acc",
                    "stage2_finetune_acc", "stage3_finetune_acc",
                    "retrain_acc"):
            assert key in sub.history

    def test_hp_zero_skips_pruning(self, trained_tiny_vit, tiny_dataset):
        sub = prune_submodel(trained_tiny_vit, tiny_dataset,
                             list(range(10)), hp=0, config=FAST)
        assert sub.model.config.embed_dim == trained_tiny_vit.config.embed_dim

    def test_hp_zero_full_classes_keeps_trained_head(self, trained_tiny_vit,
                                                     tiny_dataset):
        cfg = PruneConfig(probe_size=8, head_adapt_epochs=0, retrain_epochs=0,
                          backend="magnitude")
        sub = prune_submodel(trained_tiny_vit, tiny_dataset,
                             list(range(10)), hp=0, config=cfg)
        np.testing.assert_array_equal(sub.model.head.weight.data,
                                      trained_tiny_vit.head.weight.data)

    def test_pruned_model_beats_chance_on_subset(self, trained_tiny_vit,
                                                 tiny_dataset):
        classes = [0, 1, 2, 3, 4]
        cfg = PruneConfig(probe_size=8, head_adapt_epochs=2,
                          stage_finetune_epochs=1, retrain_epochs=2,
                          backend="kl")
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, classes, hp=1,
                             config=cfg)
        subset = tiny_dataset.subset_of_classes(classes)
        acc = evaluate(sub.model, subset.x_test, subset.y_test)
        assert acc > 1.0 / len(classes)

    def test_smaller_than_original(self, trained_tiny_vit, tiny_dataset):
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, [0, 1], hp=2,
                             config=FAST)
        assert sub.model.num_parameters() < trained_tiny_vit.num_parameters()

    def test_original_model_untouched(self, trained_tiny_vit, tiny_dataset):
        before = trained_tiny_vit.state_dict()
        prune_submodel(trained_tiny_vit, tiny_dataset, [0, 1], hp=1,
                       config=FAST)
        after = trained_tiny_vit.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestOneVsRest:
    def test_singleton_subset_becomes_binary(self, trained_tiny_vit,
                                             tiny_dataset):
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, [3], hp=2,
                             config=FAST)
        assert sub.one_vs_rest
        assert sub.model.config.num_classes == 2
        assert sub.classes == [3]

    def test_multi_class_subset_not_binary(self, trained_tiny_vit,
                                           tiny_dataset):
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, [3, 4], hp=1,
                             config=FAST)
        assert not sub.one_vs_rest
        assert sub.model.config.num_classes == 2

    def test_binary_submodel_detects_its_class(self, trained_tiny_vit,
                                               tiny_dataset):
        from repro.core.training import predict_probabilities
        from repro.pruning.pipeline import PruneConfig

        cfg = PruneConfig(probe_size=12, head_adapt_epochs=2,
                          stage_finetune_epochs=1, retrain_epochs=3,
                          backend="kl")
        sub = prune_submodel(trained_tiny_vit, tiny_dataset, [0], hp=1,
                             config=cfg)
        probs = predict_probabilities(sub.model, tiny_dataset.x_test)
        own = probs[tiny_dataset.y_test == 0, 1].mean()
        other = probs[tiny_dataset.y_test != 0, 1].mean()
        assert own > other  # scores its own class higher on average
