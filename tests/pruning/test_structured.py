"""Stage-function tests: pruning factors, target dims, backend selection."""

import numpy as np
import pytest

from repro.models.vit import ViTConfig, VisionTransformer, vit_base_config
from repro.pruning.importance import Probe
from repro.pruning.structured import (
    prune_ffn,
    prune_mhsa,
    prune_short_connection,
    pruned_dims,
    pruning_factor,
)

RNG = np.random.default_rng(0)


def make_model(embed_dim=16, num_heads=4, depth=2):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=4,
                    depth=depth, embed_dim=embed_dim, num_heads=num_heads)
    return VisionTransformer(cfg, rng=np.random.default_rng(2))


def make_probe(model):
    x = RNG.normal(size=(6, 3, 8, 8)).astype(np.float32)
    return Probe.from_model(model, x)


class TestPruningFactor:
    def test_half_heads(self):
        assert pruning_factor(12, 6) == pytest.approx(0.5)

    def test_no_pruning(self):
        assert pruning_factor(12, 0) == pytest.approx(1.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pruning_factor(12, 12)
        with pytest.raises(ValueError):
            pruning_factor(12, -1)


class TestPrunedDims:
    def test_vit_base_half(self):
        dims = pruned_dims(vit_base_config(), hp=6)
        assert dims == {"embed_dim": 384, "attn_dim": 384,
                        "mlp_hidden": 1536, "num_heads": 12}

    def test_vit_base_n10_schedule(self):
        # hp=10 keeps 2/12: d'=128, c'=512 (the paper's 9.6 MB sub-model).
        dims = pruned_dims(vit_base_config(), hp=10)
        assert dims["embed_dim"] == 128
        assert dims["mlp_hidden"] == 512

    def test_minimum_of_one(self):
        cfg = ViTConfig(image_size=8, patch_size=4, depth=1, embed_dim=4,
                        num_heads=4, num_classes=2)
        dims = pruned_dims(cfg, hp=3)
        assert dims["embed_dim"] >= 1
        assert dims["attn_dim"] >= cfg.num_heads  # one dim per head


class TestStageFunctions:
    @pytest.mark.parametrize("backend", ["kl", "magnitude"])
    def test_stage1_dims(self, backend):
        model = make_model()
        probe = make_probe(model) if backend == "kl" else None
        pruned = prune_short_connection(model, hp=2, probe=probe,
                                        backend=backend)
        assert pruned.config.embed_dim == 8

    @pytest.mark.parametrize("backend", ["kl", "magnitude"])
    def test_stage2_dims(self, backend):
        model = make_model()
        probe = make_probe(model) if backend == "kl" else None
        pruned = prune_mhsa(model, hp=2, probe=probe, backend=backend)
        assert pruned.config.resolved_attn_dim == 8
        assert pruned.config.num_heads == 4

    @pytest.mark.parametrize("backend", ["kl", "magnitude"])
    def test_stage3_dims(self, backend):
        model = make_model()
        probe = make_probe(model) if backend == "kl" else None
        pruned = prune_ffn(model, hp=2, probe=probe, backend=backend)
        assert pruned.config.resolved_mlp_hidden == 32

    def test_kl_without_probe_raises(self):
        with pytest.raises(ValueError):
            prune_short_connection(make_model(), hp=2, probe=None, backend="kl")

    def test_stage1_keeps_most_important_channels(self):
        # Make one channel dominate the output; it must survive pruning.
        model = make_model()
        scores_before = None
        model.head.weight.data[:] = 0.0
        model.head.weight.data[:, 5] = np.linspace(-2, 2, 4)
        probe = make_probe(model)
        pruned = prune_short_connection(model, hp=3, probe=probe, backend="kl")
        # channel 5's weights must appear in the pruned head (nonzero cols).
        assert np.abs(pruned.head.weight.data).sum() > 0

    def test_stages_match_analytic_dims(self):
        model = make_model()
        dims = pruned_dims(model.config, hp=1)
        m1 = prune_short_connection(model, 1, backend="magnitude")
        assert m1.config.embed_dim == dims["embed_dim"]
        m2 = prune_mhsa(m1, 1, backend="magnitude")
        assert m2.config.resolved_attn_dim == dims["attn_dim"]
        m3 = prune_ffn(m2, 1, backend="magnitude")
        assert m3.config.resolved_mlp_hidden == dims["mlp_hidden"]
