"""Weight-surgery tests.

The strongest invariants: keeping *all* units must reproduce the original
model exactly, and keeping a subset must equal a model where the dropped
units never existed (checked against masking for attention/FFN).
"""

import numpy as np
import pytest

from repro import nn
from repro.models.vit import ViTConfig, VisionTransformer
from repro.pruning.surgery import (
    prune_attention_dims,
    prune_ffn_hidden,
    prune_residual_channels,
    replace_classifier_head,
)

RNG = np.random.default_rng(0)


def make_model(embed_dim=16, num_heads=2, depth=2, num_classes=5):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=num_classes,
                    depth=depth, embed_dim=embed_dim, num_heads=num_heads)
    return VisionTransformer(cfg, rng=np.random.default_rng(3))


def sample_input(n=2, channels=3):
    return nn.Tensor(RNG.normal(size=(n, channels, 8, 8)).astype(np.float32))


def outputs(model, x):
    model.eval()
    with nn.no_grad():
        return model(x).data.copy()


class TestResidualChannelSurgery:
    def test_keep_all_is_identity(self):
        model = make_model()
        pruned = prune_residual_channels(model, np.arange(16))
        x = sample_input()
        np.testing.assert_allclose(outputs(model, x), outputs(pruned, x),
                                   atol=1e-5)

    def test_shapes_after_prune(self):
        pruned = prune_residual_channels(make_model(), np.arange(8))
        assert pruned.config.embed_dim == 8
        assert pruned.config.resolved_attn_dim == 16  # untouched in stage 1
        assert pruned.feature_dim() == 8

    def test_forward_works_after_prune(self):
        pruned = prune_residual_channels(make_model(), np.arange(8))
        assert pruned(sample_input()).shape == (2, 5)

    def test_duplicate_indices_raise(self):
        with pytest.raises(ValueError):
            prune_residual_channels(make_model(), np.array([0, 0, 1]))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            prune_residual_channels(make_model(), np.array([0, 99]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            prune_residual_channels(make_model(), np.array([], dtype=int))

    def test_param_count_shrinks(self):
        model = make_model()
        pruned = prune_residual_channels(model, np.arange(8))
        assert pruned.num_parameters() < model.num_parameters()

    def test_does_not_mutate_original(self):
        model = make_model()
        before = model.patch_embed.proj.weight.data.copy()
        prune_residual_channels(model, np.arange(8))
        np.testing.assert_array_equal(model.patch_embed.proj.weight.data, before)


class TestAttentionSurgery:
    def test_keep_all_is_identity(self):
        model = make_model()
        keep = [[np.arange(8) for _ in range(2)] for _ in range(2)]
        pruned = prune_attention_dims(model, keep)
        x = sample_input()
        np.testing.assert_allclose(outputs(model, x), outputs(pruned, x),
                                   atol=1e-5)

    def test_target_dims(self):
        model = make_model()
        keep = [[np.arange(4) for _ in range(2)] for _ in range(2)]
        pruned = prune_attention_dims(model, keep)
        assert pruned.config.resolved_attn_dim == 8
        assert pruned.config.embed_dim == 16
        assert pruned.config.head_dim == 4

    def test_unequal_head_counts_raise(self):
        model = make_model()
        keep = [[np.arange(4), np.arange(3)] for _ in range(2)]
        with pytest.raises(ValueError):
            prune_attention_dims(model, keep)

    def test_wrong_depth_raises(self):
        model = make_model()
        with pytest.raises(ValueError):
            prune_attention_dims(model, [[np.arange(4), np.arange(4)]])

    def test_wrong_head_count_raises(self):
        model = make_model()
        keep = [[np.arange(4)] for _ in range(2)]  # only 1 of 2 heads
        with pytest.raises(ValueError):
            prune_attention_dims(model, keep)

    def test_scale_adjusts_to_new_head_dim(self):
        model = make_model()
        keep = [[np.arange(4) for _ in range(2)] for _ in range(2)]
        pruned = prune_attention_dims(model, keep)
        assert pruned.blocks[0].attn.scale == pytest.approx(1.0 / 2.0)


class TestFFNSurgery:
    def test_keep_all_is_identity(self):
        model = make_model()
        keep = [np.arange(64) for _ in range(2)]
        pruned = prune_ffn_hidden(model, keep)
        x = sample_input()
        np.testing.assert_allclose(outputs(model, x), outputs(pruned, x),
                                   atol=1e-5)

    def test_pruned_equals_masked(self):
        # Dropping FFN units must equal zeroing their fc1 rows/bias and
        # fc2 columns (gelu(0) == 0 makes this exact).
        model = make_model()
        keep = [np.arange(0, 64, 2) for _ in range(2)]
        pruned = prune_ffn_hidden(model, keep)
        masked = make_model()
        masked.load_state_dict(model.state_dict())
        for b, block in enumerate(masked.blocks):
            drop = np.setdiff1d(np.arange(64), keep[b])
            block.mlp.fc1.weight.data[drop] = 0.0
            block.mlp.fc1.bias.data[drop] = 0.0
            block.mlp.fc2.weight.data[:, drop] = 0.0
        x = sample_input()
        np.testing.assert_allclose(outputs(masked, x), outputs(pruned, x),
                                   atol=1e-5)

    def test_target_dims(self):
        model = make_model()
        pruned = prune_ffn_hidden(model, [np.arange(16) for _ in range(2)])
        assert pruned.config.resolved_mlp_hidden == 16

    def test_unequal_block_widths_raise(self):
        model = make_model()
        with pytest.raises(ValueError):
            prune_ffn_hidden(model, [np.arange(16), np.arange(8)])


class TestReplaceHead:
    def test_new_head_shape(self):
        new = replace_classifier_head(make_model(num_classes=5), 3)
        assert new.config.num_classes == 3
        assert new.head.weight.shape == (3, 16)

    def test_features_preserved(self):
        model = make_model()
        new = replace_classifier_head(model, 3)
        x = sample_input()
        model.eval(); new.eval()
        with nn.no_grad():
            np.testing.assert_allclose(model.forward_features(x).data,
                                       new.forward_features(x).data, atol=1e-5)

    def test_chained_stages_compose(self):
        # stage1 -> stage2 -> stage3 produces a consistent runnable model.
        model = make_model()
        m1 = prune_residual_channels(model, np.arange(12))
        keep2 = [[np.arange(6) for _ in range(2)] for _ in range(2)]
        m2 = prune_attention_dims(m1, keep2)
        m3 = prune_ffn_hidden(m2, [np.arange(32) for _ in range(2)])
        assert m3.config.embed_dim == 12
        assert m3.config.resolved_attn_dim == 12
        assert m3.config.resolved_mlp_hidden == 32
        assert m3(sample_input()).shape == (2, 5)
