"""Channel (filter) pruning tests for the CNN/SNN baselines."""

import numpy as np
import pytest

from repro import nn
from repro.models.snn import ConvSNN, SNNConfig
from repro.models.vgg import VGG, vgg11_tiny_config
from repro.pruning.channel import (
    prune_snn,
    prune_vgg,
    snn_filter_activations,
    vgg_filter_activations,
)

RNG = np.random.default_rng(0)


def make_vgg():
    return VGG(vgg11_tiny_config(num_classes=4, image_size=32,
                                 width_scale=0.25),
               rng=np.random.default_rng(1))


def make_snn():
    cfg = SNNConfig(image_size=16, num_classes=4, channels=(8, 8),
                    time_steps=2, classifier_hidden=16)
    return ConvSNN(cfg, rng=np.random.default_rng(1))


def probe(shape=(4, 3, 32, 32)):
    return RNG.normal(size=shape).astype(np.float32)


class TestVGGActivations:
    def test_one_score_vector_per_conv(self):
        model = make_vgg()
        scores = vgg_filter_activations(model, probe())
        convs = [m for m in model.features if isinstance(m, nn.Conv2d)]
        assert len(scores) == len(convs)
        for s, conv in zip(scores, convs):
            assert s.shape == (conv.out_channels,)

    def test_scores_nonnegative(self):
        scores = vgg_filter_activations(make_vgg(), probe())
        assert all((s >= 0).all() for s in scores)


class TestPruneVGG:
    def test_half_width(self):
        model = make_vgg()
        pruned = prune_vgg(model, 0.5, probe())
        orig_convs = [m for m in model.features if isinstance(m, nn.Conv2d)]
        new_convs = [m for m in pruned.features if isinstance(m, nn.Conv2d)]
        for old, new in zip(orig_convs, new_convs):
            assert new.out_channels == max(1, round(old.out_channels * 0.5))

    def test_forward_after_prune(self):
        pruned = prune_vgg(make_vgg(), 0.5, probe())
        out = pruned(nn.Tensor(probe((2, 3, 32, 32))))
        assert out.shape == (2, 4)

    def test_param_count_shrinks(self):
        model = make_vgg()
        pruned = prune_vgg(model, 0.5, probe())
        assert pruned.num_parameters() < model.num_parameters() / 2

    def test_keep_ratio_one_preserves_function(self):
        model = make_vgg()
        model.eval()
        pruned = prune_vgg(model, 1.0, probe())
        pruned.eval()
        x = nn.Tensor(probe((2, 3, 32, 32)))
        with nn.no_grad():
            np.testing.assert_allclose(model(x).data, pruned(x).data,
                                       atol=1e-4)

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            prune_vgg(make_vgg(), 0.0, probe())
        with pytest.raises(ValueError):
            prune_vgg(make_vgg(), 1.5, probe())

    def test_trainable_after_prune(self):
        pruned = prune_vgg(make_vgg(), 0.5, probe())
        x = nn.Tensor(probe((2, 3, 32, 32)))
        nn.cross_entropy(pruned(x), np.array([0, 1])).backward()
        missing = [n for n, p in pruned.named_parameters() if p.grad is None]
        assert not missing


class TestPruneSNN:
    def test_activations_are_rates(self):
        model = make_snn()
        rates = snn_filter_activations(model, probe((4, 3, 16, 16)))
        assert len(rates) == 2
        for r in rates:
            assert (r >= 0).all() and (r <= 1.0 + 1e-6).all()

    def test_half_width(self):
        model = make_snn()
        pruned = prune_snn(model, 0.5, probe((4, 3, 16, 16)))
        assert pruned.config.scaled_channels() == (4, 4)

    def test_forward_after_prune(self):
        pruned = prune_snn(make_snn(), 0.5, probe((4, 3, 16, 16)))
        out = pruned(nn.Tensor(probe((2, 3, 16, 16))))
        assert out.shape == (2, 4)

    def test_param_count_shrinks(self):
        model = make_snn()
        pruned = prune_snn(model, 0.5, probe((4, 3, 16, 16)))
        assert pruned.num_parameters() < model.num_parameters()

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            prune_snn(make_snn(), -0.1, probe((2, 3, 16, 16)))
