"""Plan → execution bridge: deterministic rebuild, worker specs, clusters."""

import numpy as np
import pytest

from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.planning import DeploymentPlan, PlannedSystem, plan_demo_system


def states_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestFromPlan:
    def test_untrained_rebuild_is_exact(self):
        system = plan_demo_system(num_workers=2, seed=3)
        rebuilt = PlannedSystem.from_plan(
            DeploymentPlan.from_json(system.plan.to_json()))
        for original, again in zip(system.models, rebuilt.models):
            assert states_equal(original.state_dict(), again.state_dict())
        assert states_equal(system.fusion.state_dict(),
                            rebuilt.fusion.state_dict())

    def test_local_predictions_survive_round_trip(self):
        system = plan_demo_system(num_workers=2, seed=1)
        rebuilt = PlannedSystem.from_plan(
            DeploymentPlan.from_json(system.plan.to_json()))
        x = np.random.default_rng(0).normal(
            size=(4, *system.input_shape)).astype(np.float32)
        np.testing.assert_array_equal(system.local_fused_labels(x),
                                      rebuilt.local_fused_labels(x))

    def test_unknown_recipe_rejected(self):
        system = plan_demo_system(num_workers=2, seed=0)
        system.plan.build = {"recipe": "mystery", "train_fusion": True}
        with pytest.raises(ValueError):
            PlannedSystem.from_plan(system.plan)

    def test_eval_dataset_requires_demo_recipe(self):
        system = plan_demo_system(num_workers=2, seed=0)
        system.plan.build = {}
        with pytest.raises(ValueError):
            system.eval_dataset()


class TestWorkerSpecFromPlan:
    def test_spec_reflects_plan_assignment(self):
        system = plan_demo_system(num_workers=2, seed=0,
                                  throughputs=[1.0, 0.5])
        plan = system.plan
        model_id = plan.model_ids[0]
        spec = WorkerSpec.from_plan(plan, model_id, system.models[0])
        device = plan.device(plan.mapping[model_id])
        assert spec.worker_id == model_id
        assert spec.device.device_id == device.device_id
        assert spec.device.macs_per_second == device.macs_per_second
        assert spec.link.bandwidth_bps == device.link_bandwidth_bps
        assert spec.feature_dim == plan.submodel(model_id).feature_dim
        assert spec.flops_per_sample == \
            plan.submodel(model_id).flops_per_sample

    def test_custom_worker_id(self):
        system = plan_demo_system(num_workers=2, seed=0)
        spec = WorkerSpec.from_plan(system.plan, "submodel-1",
                                    system.models[1], worker_id="spare")
        assert spec.worker_id == "spare"


class TestClusterFromPlan:
    def test_specs_align_with_submodels(self):
        system = plan_demo_system(num_workers=3, seed=0)
        cluster = system.make_cluster()
        assert cluster.worker_ids == system.plan.model_ids
        assert cluster.feature_dims() == system.plan.feature_dims()

    def test_model_count_mismatch_rejected(self):
        system = plan_demo_system(num_workers=2, seed=0)
        with pytest.raises(ValueError):
            EdgeCluster.from_plan(system.plan, system.models[:1])


class TestAddWorker:
    def test_add_before_start_registers_spec(self):
        system = plan_demo_system(num_workers=2, seed=0)
        cluster = system.make_cluster()
        spare = WorkerSpec.from_plan(system.plan, "submodel-0",
                                     system.models[0], worker_id="spare")
        cluster.add_worker(spare)
        assert cluster.worker_ids == [*system.plan.model_ids, "spare"]

    def test_duplicate_worker_id_rejected(self):
        system = plan_demo_system(num_workers=2, seed=0)
        cluster = system.make_cluster()
        spec = WorkerSpec.from_plan(system.plan, "submodel-0",
                                    system.models[0])
        with pytest.raises(ValueError):
            cluster.add_worker(spec)
