"""Planner-selectable int8 artifacts: digests, fallback, boot, rollout."""

import numpy as np
import pytest

from repro import nn
from repro.assignment import InfeasibleAssignment
from repro.planning import (
    DeploymentPlan,
    plan_demo_system,
    quantize_plan_artifacts,
)
from repro.store import ArtifactStore, recipe_digest


@pytest.fixture(scope="module")
def store(tmp_path_factory) -> ArtifactStore:
    return ArtifactStore(tmp_path_factory.mktemp("artifacts"))


@pytest.fixture(scope="module")
def fp32_system(store):
    return plan_demo_system(num_workers=2, train_fusion=True,
                            fusion_epochs=2, store=store,
                            transport="inprocess")


@pytest.fixture(scope="module")
def int8_system(store, fp32_system):
    # Tightened budget: the fp32 sub-models no longer fit, so "auto"
    # must select int8.  Same seed/recipe → same underlying training.
    return plan_demo_system(num_workers=2, train_fusion=True,
                            fusion_epochs=2, store=store,
                            transport="inprocess",
                            quant="auto", memory_headroom=0.5)


# ----------------------------------------------------------------------
# Recipes and digests
# ----------------------------------------------------------------------
def test_fp32_recipe_omits_quant_key(fp32_system):
    """Digest stability: every digest minted before quantization existed
    must stay valid, so fp32 recipes carry no quant key at all."""
    recipe = fp32_system.plan.submodel_recipe("submodel-0")
    assert "quant" not in recipe
    explicit = fp32_system.plan.submodel_recipe("submodel-0", quant="fp32")
    assert recipe_digest(explicit) == recipe_digest(recipe)


def test_int8_variant_gets_its_own_digest(fp32_system, int8_system):
    fp32 = fp32_system.plan.submodel_recipe("submodel-0")
    int8 = int8_system.plan.submodel_recipe("submodel-0")
    assert int8["quant"] == "int8"
    assert recipe_digest(fp32) != recipe_digest(int8)
    assert fp32_system.plan.artifacts["submodel-0"] \
        != int8_system.plan.artifacts["submodel-0"]


def test_fusion_artifact_is_shared_across_schemes(fp32_system, int8_system):
    """Fusion trains on fp32 features, so quantized weight variants must
    keep referencing the same fusion artifact — no orphaned retrain."""
    assert fp32_system.plan.artifacts["fusion"] \
        == int8_system.plan.artifacts["fusion"]


# ----------------------------------------------------------------------
# Planner selection
# ----------------------------------------------------------------------
def test_auto_falls_back_to_int8_under_tight_memory(int8_system):
    plan = int8_system.plan
    assert all(m.quant == "int8" for m in plan.submodels)
    selection = plan.build["quant_selection"]
    assert selection["requested"] == "auto"
    assert selection["selected"] == "int8"
    attempts = {a["quant"]: a["feasible"] for a in selection["attempts"]}
    assert attempts == {"fp32": False, "int8": True}


def test_auto_keeps_fp32_when_it_fits(store):
    system = plan_demo_system(num_workers=2, train_fusion=True,
                              fusion_epochs=2, store=store,
                              transport="inprocess", quant="auto")
    assert all(m.quant == "fp32" for m in system.plan.submodels)
    assert system.warm_booted            # same recipe as the fp32 fixture


def test_int8_sizes_shrink_the_planned_footprint(fp32_system, int8_system):
    for fp32, int8 in zip(fp32_system.plan.submodels,
                          int8_system.plan.submodels):
        assert fp32.size_bytes >= 2 * int8.size_bytes


def test_infeasible_when_even_int8_overflows():
    with pytest.raises(InfeasibleAssignment):
        plan_demo_system(num_workers=2, quant="auto",
                         memory_headroom=0.01)


def test_unknown_quant_scheme_rejected():
    with pytest.raises(ValueError, match="quant"):
        plan_demo_system(num_workers=2, quant="int4")


# ----------------------------------------------------------------------
# Artifacts, accuracy, and the serving path
# ----------------------------------------------------------------------
def test_int8_artifacts_are_at_least_2x_smaller(fp32_system, int8_system,
                                                store):
    for model_id in ("submodel-0", "submodel-1"):
        fp32_blob = store.state_blob(fp32_system.plan.artifacts[model_id])
        int8_blob = store.state_blob(int8_system.plan.artifacts[model_id])
        fp32_bytes = nn.state_dict_num_bytes(
            nn.state_dict_from_bytes(fp32_blob))
        int8_bytes = nn.state_dict_num_bytes(
            nn.state_dict_from_bytes(int8_blob))
        assert fp32_bytes >= 2 * int8_bytes, (model_id, fp32_bytes,
                                              int8_bytes)


def test_int8_accuracy_within_one_point(fp32_system, int8_system):
    fp32_acc = fp32_system.plan.prediction.accuracy
    int8_acc = int8_system.plan.prediction.accuracy
    assert abs(fp32_acc - int8_acc) <= 0.01 + 1e-9, (fp32_acc, int8_acc)


def test_int8_plan_warm_boots_from_store(store, int8_system):
    again = plan_demo_system(num_workers=2, train_fusion=True,
                             fusion_epochs=2, store=store,
                             transport="inprocess",
                             quant="auto", memory_headroom=0.5)
    assert again.warm_booted
    assert all(nn.is_quantized(m) for m in again.models)
    assert again.plan.artifacts == int8_system.plan.artifacts


def test_int8_fleet_serves_and_matches_local_reference(int8_system):
    x = np.random.default_rng(0).normal(
        size=(4, *int8_system.input_shape)).astype(np.float32)
    with int8_system.make_cluster() as cluster:
        labels, _ = cluster.infer_fused(x, int8_system.fusion)
    np.testing.assert_array_equal(labels,
                                  int8_system.local_fused_labels(x))


def test_plan_json_roundtrip_and_legacy_plans(int8_system):
    plan = DeploymentPlan.from_json(int8_system.plan.to_json())
    assert [m.quant for m in plan.submodels] == ["int8", "int8"]
    legacy = int8_system.plan.to_dict()
    for sub in legacy["submodels"]:
        sub.pop("quant")                 # a pre-quantization plan file
    loaded = DeploymentPlan.from_dict(legacy)
    assert all(m.quant == "fp32" for m in loaded.submodels)


def test_quantize_plan_artifacts_derives_planned_digests(fp32_system,
                                                         int8_system,
                                                         store):
    rows = quantize_plan_artifacts(fp32_system.plan, store)
    derived = {row["model_id"]: row["quant_digest"] for row in rows}
    for model_id, digest in derived.items():
        assert digest == int8_system.plan.artifacts[model_id]
        assert store.has(digest)
    for row in rows:
        assert row["fp32_bytes"] >= 2 * row["quant_bytes"]


def test_rolling_swap_to_int8(store):
    system = plan_demo_system(num_workers=2, train_fusion=True,
                              fusion_epochs=2, store=store,
                              transport="inprocess")
    x = np.random.default_rng(1).normal(
        size=(4, *system.input_shape)).astype(np.float32)
    server = system.make_server()
    with server:
        before = server.submit(x).result(timeout=30)
        worker_id = system.swap_from_store(server, "submodel-0", store,
                                           quant="int8")
        after = server.submit(x).result(timeout=30)
    assert worker_id.startswith("submodel-0@swap")
    assert system.plan.submodels[0].quant == "int8"
    assert system.plan.submodels[1].quant == "fp32"
    assert nn.is_quantized(system.models[0])
    # The tiny demo system's labels survive int8 quantization.
    np.testing.assert_array_equal(before, after)


def test_worker_spec_detects_quantized_model():
    from repro.edge.device import DeviceModel
    from repro.edge.runtime import WorkerSpec
    from repro.serving.demo import _tiny_model

    model = _tiny_model("vit", 10, 8, np.random.default_rng(2))
    device = DeviceModel(device_id="d0")
    spec = WorkerSpec.from_model("w0", model, "vit", 1e6, device)
    assert spec.quant == "fp32"
    qspec = WorkerSpec.from_model("w0", nn.quantize_module(model), "vit",
                                  1e6, device)
    assert qspec.quant == "int8"
