"""Codec plumbing through plans and the planner's codec selection."""

import numpy as np
import pytest

from repro.edge.codec import get_codec
from repro.planning import (
    DEFAULT_CANDIDATE_CODECS,
    DeploymentPlan,
    PlannedSystem,
    Planner,
    PlannerConfig,
    PlanningError,
    plan_demo_system,
)


@pytest.fixture(scope="module")
def q8_system():
    return plan_demo_system(num_workers=2, codec="q8")


class TestPlanCarriesCodec:
    def test_json_round_trip_preserves_codec(self, q8_system):
        plan = q8_system.plan
        rebuilt = DeploymentPlan.from_json(plan.to_json())
        assert rebuilt.codec == "q8"
        assert rebuilt.to_dict() == plan.to_dict()

    def test_legacy_json_defaults_to_raw32(self, q8_system):
        data = q8_system.plan.to_dict()
        del data["codec"]              # a pre-codec plan file
        assert DeploymentPlan.from_dict(data).codec == "raw32"

    def test_validate_rejects_unknown_codec(self, q8_system):
        plan = DeploymentPlan.from_dict(q8_system.plan.to_dict())
        plan.codec = "nope"
        with pytest.raises(KeyError, match="unknown feature codec"):
            plan.validate()

    def test_deployment_spec_uses_encoded_bytes(self, q8_system):
        plan = q8_system.plan
        for model_id, profile in plan.deployment_spec().profiles.items():
            submodel = plan.submodel(model_id)
            assert profile.feature_bytes == get_codec("q8").estimate_bytes(
                submodel.feature_dim)
            assert profile.feature_bytes < 4 * submodel.feature_dim

    def test_worker_specs_inherit_the_plan_codec(self, q8_system):
        cluster = q8_system.make_cluster()
        assert all(spec.codec == "q8" for spec in cluster.specs)

    def test_replanning_keeps_the_codec(self, q8_system):
        from repro.planning import replan_on_failure

        plan = q8_system.plan
        new_plan = replan_on_failure(plan, {plan.mapping["submodel-0"]})
        assert new_plan.codec == "q8"


class TestSelectCodec:
    def test_picks_a_smaller_codec_on_a_slow_link(self):
        system = plan_demo_system(num_workers=2)
        planner = Planner(
            [d.device_model() for d in system.plan.devices],
            system.plan.fusion_device.device_model(),
            config=PlannerConfig())
        best = planner.select_codec(system.plan)
        assert best.codec != "raw32"   # every lossy candidate ships less
        assert best.prediction.latency_s \
            <= system.plan.prediction.latency_s
        selection = best.build["codec_selection"]
        assert [c["codec"] for c in selection["candidates"]] \
            == list(DEFAULT_CANDIDATE_CODECS)

    def test_measured_accuracy_gates_candidates(self):
        system = plan_demo_system(num_workers=2)
        planner = Planner(
            [d.device_model() for d in system.plan.devices],
            system.plan.fusion_device.device_model(),
            config=PlannerConfig(accuracy_drop_bound=0.01))

        def measure(codec_name):
            return 0.9 if codec_name in ("raw32", "f16") else 0.5

        best = planner.select_codec(system.plan, measure_accuracy=measure)
        assert best.codec == "f16"     # q8 variants fail the measured bound
        assert best.prediction.accuracy == 0.9

    def test_no_admissible_candidate_raises(self):
        system = plan_demo_system(num_workers=2)
        planner = Planner(
            [d.device_model() for d in system.plan.devices],
            system.plan.fusion_device.device_model(),
            # Unsatisfiable bound: even raw32's zero drop is too much.
            config=PlannerConfig(accuracy_drop_bound=-1.0))
        with pytest.raises(PlanningError, match="no candidate codec"):
            planner.select_codec(system.plan)

    def test_lossy_candidates_rejected_fall_back_to_raw32(self):
        system = plan_demo_system(num_workers=2)
        planner = Planner(
            [d.device_model() for d in system.plan.devices],
            system.plan.fusion_device.device_model(),
            config=PlannerConfig(accuracy_drop_bound=0.01))
        best = planner.select_codec(
            system.plan,
            measure_accuracy=lambda name: 1.0 if name == "raw32" else 0.0)
        assert best.codec == "raw32"

    def test_explicit_config_still_honours_codec_argument(self):
        system = plan_demo_system(num_workers=2, codec="q8",
                                  config=PlannerConfig(seed=1))
        assert system.plan.codec == "q8"

    def test_conflicting_codec_and_config_raise(self):
        with pytest.raises(ValueError, match="conflicting codecs"):
            plan_demo_system(num_workers=2, codec="q8",
                             config=PlannerConfig(codec="f16"))

    def test_config_codec_alone_is_respected(self):
        system = plan_demo_system(num_workers=2,
                                  config=PlannerConfig(codec="f16"))
        assert system.plan.codec == "f16"

    def test_auto_codec_in_plan_demo_system(self):
        system = plan_demo_system(num_workers=2, codec="auto")
        assert system.plan.codec in DEFAULT_CANDIDATE_CODECS
        assert system.plan.codec != "raw32"
        assert "codec_selection" in system.plan.build


class TestCodecAccuracy:
    def test_fused_accuracy_within_bound_of_raw32(self):
        """Trained demo: q8/f16 fused accuracy within 0.01 of raw32."""
        system = plan_demo_system(num_workers=2, train_fusion=True,
                                  fusion_epochs=4)
        dataset = system.eval_dataset()
        accuracies = {}
        for codec in ("raw32", "f16", "q8"):
            plan = DeploymentPlan.from_dict(system.plan.to_dict())
            plan.codec = codec
            coded = PlannedSystem(plan=plan, models=system.models,
                                  fusion=system.fusion)
            accuracies[codec] = coded.local_accuracy(dataset.x_test,
                                                     dataset.y_test)
        assert accuracies["raw32"] - accuracies["f16"] <= 0.01
        assert accuracies["raw32"] - accuracies["q8"] <= 0.01
