"""Replanning: orphaned sub-models move into surviving residual capacity."""

import pytest

from repro.planning import ReplanInfeasible, replan_on_failure, residual_capacity
from repro.planning.plan import DeploymentPlan, PlannedDevice, PlannedSubModel


def make_plan(device_mem=(3000, 3000, 3000), device_energy=(1e7, 1e7, 1e7)):
    """Three devices, one sub-model each, headroom for one orphan."""
    submodels = [
        PlannedSubModel(model_id=f"submodel-{i}", classes=(2 * i, 2 * i + 1),
                        hp=0, size_bytes=1000, flops_per_sample=1e6,
                        feature_dim=8, model_kind="vit",
                        model_config={"image_size": 8, "in_channels": 3})
        for i in range(3)]
    devices = [
        PlannedDevice(device_id=f"edge-{i}", macs_per_second=1e12,
                      memory_bytes=device_mem[i],
                      energy_flops=device_energy[i],
                      link_bandwidth_bps=1e9, link_overhead_s=0.0)
        for i in range(3)]
    plan = DeploymentPlan(
        num_classes=6,
        partition=[[0, 1], [2, 3], [4, 5]],
        submodels=submodels,
        devices=devices,
        mapping={f"submodel-{i}": f"edge-{i}" for i in range(3)},
        fusion_device=PlannedDevice(
            device_id="fusion", macs_per_second=1e12, memory_bytes=3000,
            energy_flops=1e7, link_bandwidth_bps=1e9, link_overhead_s=0.0),
        fusion_flops=1e4,
        fusion_config={"input_dim": 24, "num_classes": 6, "shrink": 0.5,
                       "name": "fusion-mlp"},
    )
    plan.validate()
    return plan


class TestResidualCapacity:
    def test_subtracts_hosted_models(self):
        plan = make_plan()
        specs = {s.device_id: s for s in residual_capacity(plan, {"edge-0"})}
        assert set(specs) == {"edge-1", "edge-2"}
        assert specs["edge-1"].memory_bytes == 3000 - 1000
        assert specs["edge-1"].energy_flops == pytest.approx(1e7 - 1e6)

    def test_exhausted_devices_omitted(self):
        plan = make_plan(device_mem=(3000, 1000, 3000))
        specs = residual_capacity(plan, {"edge-0"})
        assert {s.device_id for s in specs} == {"edge-2"}


class TestReplanOnFailure:
    def test_orphan_moves_to_survivor(self):
        plan = make_plan()
        new_plan = replan_on_failure(plan, {"edge-0"})
        new_plan.validate()
        assert set(new_plan.device_ids) == {"edge-1", "edge-2"}
        moved_to = new_plan.mapping["submodel-0"]
        assert moved_to in {"edge-1", "edge-2"}
        # survivors keep their original placement
        assert new_plan.mapping["submodel-1"] == "edge-1"
        assert new_plan.mapping["submodel-2"] == "edge-2"

    def test_history_records_event(self):
        plan = make_plan()
        new_plan = replan_on_failure(plan, {"edge-0"})
        event = new_plan.history[-1]
        assert event["kind"] == "replan"
        assert event["down_devices"] == ["edge-0"]
        assert set(event["moved"]) == {"submodel-0"}
        assert plan.history == []      # original untouched

    def test_prediction_rescored_on_shrunken_fleet(self):
        from repro.planning import score_plan

        plan = make_plan()
        before = score_plan(plan)
        new_plan = replan_on_failure(plan, {"edge-0"})
        assert new_plan.prediction is not None
        # two sub-models share a device now: per-sample latency cannot drop
        assert new_plan.prediction.latency_s >= before.latency_s

    def test_accuracy_carried_over(self):
        import dataclasses

        from repro.planning import score_plan

        plan = make_plan()
        plan.prediction = dataclasses.replace(score_plan(plan), accuracy=0.9)
        new_plan = replan_on_failure(plan, {"edge-1"})
        assert new_plan.prediction.accuracy == 0.9

    def test_sequential_failures_accumulate(self):
        plan = make_plan()
        after_one = replan_on_failure(plan, {"edge-0"})
        after_two = replan_on_failure(after_one, {"edge-1"})
        after_two.validate()
        assert after_two.device_ids == ["edge-2"]
        assert set(after_two.mapping.values()) == {"edge-2"}
        assert len(after_two.history) == 2

    def test_infeasible_when_no_memory_headroom(self):
        plan = make_plan(device_mem=(3000, 1000, 1000))
        with pytest.raises(ReplanInfeasible):
            replan_on_failure(plan, {"edge-0"})

    def test_infeasible_when_no_energy_headroom(self):
        plan = make_plan(device_energy=(1e7, 1.5e6, 1.5e6))
        with pytest.raises(ReplanInfeasible):
            replan_on_failure(plan, {"edge-0"})

    def test_all_devices_down_infeasible(self):
        plan = make_plan()
        with pytest.raises(ReplanInfeasible):
            replan_on_failure(plan, {"edge-0", "edge-1", "edge-2"})

    def test_fusion_device_down_infeasible(self):
        plan = make_plan()
        with pytest.raises(ReplanInfeasible):
            replan_on_failure(plan, {"fusion"})

    def test_unknown_device_rejected(self):
        plan = make_plan()
        with pytest.raises(KeyError):
            replan_on_failure(plan, {"ghost"})
