"""DeploymentPlan data model: lookups, validation, JSON round trip."""

import pytest

from repro.assignment import InfeasibleAssignment
from repro.edge.simulator import simulate_inference
from repro.planning import DeploymentPlan, PlannedDevice, PlannedSubModel


def make_submodel(i, size=1000, flops=1e6, classes=(0, 1), dim=8):
    return PlannedSubModel(model_id=f"submodel-{i}", classes=tuple(classes),
                           hp=0, size_bytes=size, flops_per_sample=flops,
                           feature_dim=dim, model_kind="vit",
                           model_config={"image_size": 8, "in_channels": 3})


def make_device(i, mem=10_000, energy=1e9, macs=1e12):
    return PlannedDevice(device_id=f"edge-{i}", macs_per_second=macs,
                         memory_bytes=mem, energy_flops=energy,
                         link_bandwidth_bps=1e9, link_overhead_s=0.0)


def make_plan(num_devices=2, **overrides):
    submodels = [make_submodel(0, classes=(0, 1)),
                 make_submodel(1, classes=(2, 3))]
    devices = [make_device(i) for i in range(num_devices)]
    defaults = dict(
        num_classes=4,
        partition=[[0, 1], [2, 3]],
        submodels=submodels,
        devices=devices,
        mapping={"submodel-0": "edge-0",
                 "submodel-1": devices[-1].device_id},
        fusion_device=PlannedDevice(
            device_id="fusion", macs_per_second=1e12, memory_bytes=10_000,
            energy_flops=1e9, link_bandwidth_bps=1e9, link_overhead_s=0.0),
        fusion_flops=1e4,
        fusion_config={"input_dim": 16, "num_classes": 4, "shrink": 0.5,
                       "name": "fusion-mlp"},
    )
    defaults.update(overrides)
    return DeploymentPlan(**defaults)


class TestLookups:
    def test_submodel_and_device(self):
        plan = make_plan()
        assert plan.submodel("submodel-1").classes == (2, 3)
        assert plan.device("edge-0").memory_bytes == 10_000
        assert plan.device("fusion").device_id == "fusion"
        with pytest.raises(KeyError):
            plan.submodel("nope")
        with pytest.raises(KeyError):
            plan.device("nope")

    def test_models_on_and_device_of(self):
        plan = make_plan(num_devices=1,
                         mapping={"submodel-0": "edge-0",
                                  "submodel-1": "edge-0"})
        assert plan.models_on("edge-0") == ["submodel-0", "submodel-1"]
        assert plan.device_of("submodel-1") == "edge-0"

    def test_feature_dims(self):
        assert make_plan().feature_dims() == {"submodel-0": 8,
                                              "submodel-1": 8}


class TestValidate:
    def test_valid_plan_passes(self):
        make_plan().validate()

    def test_unmapped_submodel_rejected(self):
        plan = make_plan(mapping={"submodel-0": "edge-0"})
        with pytest.raises(InfeasibleAssignment):
            plan.validate()

    def test_unknown_device_rejected(self):
        plan = make_plan(mapping={"submodel-0": "edge-0",
                                  "submodel-1": "ghost"})
        with pytest.raises(InfeasibleAssignment):
            plan.validate()

    def test_over_memory_rejected(self):
        plan = make_plan(num_devices=1,
                         submodels=[make_submodel(0, size=8_000,
                                                  classes=(0, 1)),
                                    make_submodel(1, size=8_000,
                                                  classes=(2, 3))],
                         mapping={"submodel-0": "edge-0",
                                  "submodel-1": "edge-0"})
        with pytest.raises(InfeasibleAssignment):
            plan.validate()

    def test_bad_partition_rejected(self):
        plan = make_plan(partition=[[0, 1], [1, 3]])
        with pytest.raises(ValueError):
            plan.validate()


class TestSerialization:
    def test_dict_round_trip(self):
        plan = make_plan()
        again = DeploymentPlan.from_dict(plan.to_dict())
        assert again.to_dict() == plan.to_dict()
        assert again.submodels == plan.submodels
        assert again.devices == plan.devices

    def test_json_round_trip(self):
        plan = make_plan()
        again = DeploymentPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()

    def test_save_load(self, tmp_path):
        plan = make_plan()
        path = plan.save(tmp_path / "plan.json")
        again = DeploymentPlan.load(path)
        assert again.to_dict() == plan.to_dict()
        again.validate()

    def test_unsupported_version_rejected(self):
        data = make_plan().to_dict()
        data["format_version"] = 999
        with pytest.raises(ValueError):
            DeploymentPlan.from_dict(data)

    def test_history_and_build_survive(self):
        plan = make_plan(build={"recipe": "demo-v1", "image_size": 8},
                         history=[{"kind": "replan", "down_devices": ["x"]}])
        again = DeploymentPlan.from_json(plan.to_json())
        assert again.build["recipe"] == "demo-v1"
        assert again.history[0]["kind"] == "replan"


class TestDerivedViews:
    def test_assignment_plan_residuals(self):
        plan = make_plan()
        residuals = plan.assignment_plan()
        assert residuals.residual_memory["edge-0"] == 10_000 - 1000
        assert residuals.residual_energy["edge-1"] == pytest.approx(1e9 - 1e6)

    def test_deployment_spec_simulates(self):
        plan = make_plan()
        result = simulate_inference(plan.deployment_spec(), num_samples=2)
        assert len(result.latencies) == 2
        assert result.makespan > 0
