"""Planner pipeline: partition → schedule → assignment → DES scoring."""

import pytest

from repro.edge.device import DeviceModel
from repro.models.vit import ViTConfig
from repro.planning import Planner, PlannerConfig, PlanningError, score_plan
from repro.planning.execute import plan_demo_system


def small_base():
    return ViTConfig(image_size=16, patch_size=4, num_classes=10,
                     depth=2, embed_dim=32, num_heads=4, name="vit-test")


def fleet(count, energy=1e11):
    return [DeviceModel(device_id=f"pi-{i}", macs_per_second=1e9,
                        memory_bytes=64 * 2 ** 20, energy_flops=energy)
            for i in range(count)]


class TestPlanVit:
    def test_produces_valid_scored_plan(self):
        planner = Planner(fleet(3), config=PlannerConfig(seed=0))
        plan = planner.plan_vit(small_base(), num_groups=3)
        plan.validate()
        assert len(plan.submodels) == 3
        assert plan.prediction is not None
        assert plan.prediction.latency_s > 0
        assert plan.prediction.energy_j > 0
        # every class covered exactly once across the sub-models
        covered = sorted(c for m in plan.submodels for c in m.classes)
        assert covered == list(range(10))

    def test_submodels_carry_rebuildable_configs(self):
        planner = Planner(fleet(2), config=PlannerConfig(seed=0))
        plan = planner.plan_vit(small_base(), num_groups=2)
        for sub in plan.submodels:
            assert sub.model_kind == "vit"
            config = ViTConfig.from_dict(sub.model_config)
            assert config.num_classes == len(sub.classes)
            assert config.embed_dim == sub.feature_dim

    def test_candidate_search_picks_lowest_latency(self):
        planner = Planner(fleet(4), config=PlannerConfig(seed=0))
        best = planner.plan_vit(small_base())
        candidates = [planner.plan_vit(small_base(), num_groups=n)
                      for n in range(2, 5)]
        assert best.prediction.latency_s == pytest.approx(
            min(c.prediction.latency_s for c in candidates))

    def test_infeasible_fleet_raises_planning_error(self):
        # Energy budget far below one sample's FLOPs at maximum pruning.
        planner = Planner(fleet(2, energy=10.0),
                          config=PlannerConfig(seed=0))
        with pytest.raises(PlanningError):
            planner.plan_vit(small_base())

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            Planner([])


class TestPlanDemoSystem:
    def test_heterogeneous_fleet_planned_and_scored(self):
        system = plan_demo_system(num_workers=3, seed=0,
                                  throughputs=[1.0, 0.5, 0.25])
        plan = system.plan
        plan.validate()
        assert len(plan.devices) == 3
        assert {d.macs_per_second for d in plan.devices} == \
            {1e12, 0.5e12, 0.25e12}
        assert plan.prediction.latency_s > 0
        assert plan.prediction.accuracy is None       # untrained
        assert plan.build["recipe"] == "demo-v1"

    def test_rescore_matches_stored_prediction(self):
        system = plan_demo_system(num_workers=2, seed=0)
        plan = system.plan
        rescored = score_plan(plan)
        assert rescored.latency_s == pytest.approx(plan.prediction.latency_s)
        assert rescored.energy_j == pytest.approx(plan.prediction.energy_j)

    def test_throughputs_length_checked(self):
        with pytest.raises(ValueError):
            plan_demo_system(num_workers=3, throughputs=[1.0])


class TestModelFlops:
    def test_builtin_kinds_profiled(self):
        from repro.profiling import model_flops

        assert model_flops("vit", small_base()) > 0

    def test_custom_kind_plannable_via_registry(self):
        from repro.edge.runtime import MODEL_KINDS, register_model_kind
        from repro.profiling import model_flops

        register_model_kind("flops-test", dict, lambda config: None,
                            flops=lambda config: 123.0)
        try:
            assert model_flops("flops-test", {}) == 123.0
        finally:
            del MODEL_KINDS["flops-test"]

    def test_kind_without_profiler_raises(self):
        from repro.profiling import model_flops

        with pytest.raises(KeyError):
            model_flops("mystery", {})
