"""Trace-driven capacity planning: sweeps, frontier, feasibility."""

import pytest

from repro.planning.capacity import (
    DEVICE_CLASSES,
    CapacityPoint,
    cheapest_within_slo,
    pareto_frontier,
    plan_capacity,
)
from repro.serving.traffic import poisson_trace


@pytest.fixture(scope="module")
def report():
    trace = poisson_trace(rate_rps=30, duration_s=10, seed=0)
    return plan_capacity(trace, device_classes=("pi4b", "pi5"),
                         fleet_sizes=(12, 120), group_counts=(2, 3),
                         codecs=("raw32",))


class TestPlanCapacity:
    def test_sweep_covers_the_grid(self, report):
        assert len(report.points) == 2 * 2 * 2  # classes x fleets x groups
        assert all(isinstance(p, CapacityPoint) for p in report.points)

    def test_feasible_points_are_scored(self, report):
        for p in report.feasible_points():
            assert p.p50_s <= p.p95_s <= p.max_s
            assert p.throughput_rps > 0
            assert 0 <= p.worker_utilization <= 1
            assert p.devices_used == p.replicas * (p.group_count + 1)
            assert p.cost_usd == pytest.approx(
                p.devices_used * DEVICE_CLASSES[p.device_class].unit_cost_usd)

    def test_more_devices_never_hurt_p95(self, report):
        by_config = {}
        for p in report.feasible_points():
            by_config.setdefault(
                (p.device_class, p.group_count, p.codec), []).append(p)
        for series in by_config.values():
            series.sort(key=lambda p: p.devices_used)
            for smaller, bigger in zip(series, series[1:]):
                assert bigger.p95_s <= smaller.p95_s * 1.0001

    def test_faster_class_is_faster(self, report):
        def p95(cls):
            return min(p.p95_s for p in report.feasible_points()
                       if p.device_class == cls)
        assert p95("pi5") < p95("pi4b")

    def test_report_serializes_without_nan(self, report):
        import json
        payload = json.dumps(report.to_json(), allow_nan=False)
        assert '"frontier"' in payload

    def test_unknown_class_rejected(self):
        trace = poisson_trace(10, 2, seed=0)
        with pytest.raises(KeyError, match="unknown device class"):
            plan_capacity(trace, device_classes=("quantum",))

    def test_tiny_fleet_is_infeasible_not_crashing(self):
        trace = poisson_trace(10, 2, seed=0)
        report = plan_capacity(trace, device_classes=("pi4b",),
                               fleet_sizes=(2,), group_counts=(5,),
                               codecs=("raw32",))
        (point,) = report.points
        assert not point.feasible
        assert "replica" in point.reason

    def test_memory_starved_class_falls_back_or_fails(self):
        # A ViT-Base fifth (~tens of MB fp32) fits the 512 MB pi-zero2,
        # so the sweep plans fp32 there; the class is just slow, not
        # infeasible.  The int8 fallback path is exercised through
        # _replica_spec's size arithmetic in either case.
        trace = poisson_trace(5, 2, seed=0)
        report = plan_capacity(trace, device_classes=("pi-zero2",),
                               fleet_sizes=(6,), group_counts=(5,),
                               codecs=("raw32",))
        (point,) = report.points
        assert point.feasible
        assert point.quant in ("fp32", "int8")

    def test_replicas_capped_by_trace_size(self):
        trace = poisson_trace(2, 1, seed=3)  # very few requests
        report = plan_capacity(trace, device_classes=("pi4b",),
                               fleet_sizes=(1000,), group_counts=(2,),
                               codecs=("raw32",))
        (point,) = report.points
        assert point.feasible
        assert point.replicas <= trace.num_requests
        assert point.devices_used < 1000


class TestFrontier:
    def test_frontier_is_pareto(self, report):
        costs = [p.cost_usd for p in report.frontier]
        p95s = [p.p95_s for p in report.frontier]
        assert costs == sorted(costs)
        assert all(b > a for a, b in zip(costs, costs[1:]))
        assert all(b < a for a, b in zip(p95s, p95s[1:]))

    def test_frontier_points_are_undominated(self, report):
        for f in report.frontier:
            for p in report.feasible_points():
                dominates = (p.cost_usd <= f.cost_usd and p.p95_s < f.p95_s) \
                    or (p.cost_usd < f.cost_usd and p.p95_s <= f.p95_s)
                assert not dominates

    def test_pareto_frontier_ignores_infeasible(self):
        infeasible = CapacityPoint(
            device_class="pi4b", fleet_size=1, devices_used=0, replicas=0,
            group_count=2, codec="raw32", quant="-", cost_usd=0.0,
            feasible=False, reason="too small")
        assert pareto_frontier([infeasible]) == []

    def test_cheapest_within_slo(self, report):
        loosest = max(p.p95_s for p in report.feasible_points())
        best = cheapest_within_slo(report, loosest)
        assert best is not None
        assert best.cost_usd == min(p.cost_usd
                                    for p in report.feasible_points())
        assert cheapest_within_slo(report, 1e-9) is None
