"""CLI smoke tests: every subcommand runs and prints a table."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCLI:
    def test_profile(self, capsys):
        out = run_cli(capsys, "profile")
        assert "ViT-Base" in out
        assert "Latency" in out

    def test_flops_default(self, capsys):
        out = run_cli(capsys, "flops")
        assert "CIFAR-10" in out and "GTZAN" in out

    def test_flops_algorithm1(self, capsys):
        out = run_cli(capsys, "flops", "--mode", "algorithm1")
        assert "N=10" in out

    def test_curve_default(self, capsys):
        out = run_cli(capsys, "curve")
        assert "latency_s" in out

    def test_curve_small_model(self, capsys):
        out = run_cli(capsys, "curve", "--model", "vit-small")
        assert "latency_s" in out

    def test_curve_explicit_budget(self, capsys):
        out = run_cli(capsys, "curve", "--model", "vit-base",
                      "--budget-mb", "300")
        assert "total_memory_mb" in out

    def test_plan_emits_json(self, capsys):
        import json

        out = run_cli(capsys, "plan", "--workers", "2")
        plan = json.loads(out)
        assert plan["format_version"] == 1
        assert len(plan["submodels"]) == 2
        assert set(plan["mapping"]) == {"submodel-0", "submodel-1"}

    def test_plan_writes_file(self, capsys, tmp_path):
        from repro.planning import DeploymentPlan

        path = tmp_path / "plan.json"
        out = run_cli(capsys, "plan", "--workers", "3",
                      "--throughputs", "1.0,0.5,0.25",
                      "--out", str(path))
        assert "plan written to" in out
        plan = DeploymentPlan.load(path)
        plan.validate()
        assert len(plan.devices) == 3
        assert plan.prediction is not None

    def test_communication(self, capsys):
        out = run_cli(capsys, "communication")
        assert "feature_bytes" in out

    def test_schedule(self, capsys):
        out = run_cli(capsys, "schedule", "--devices", "3")
        assert "total:" in out

    def test_schedule_algorithm1(self, capsys):
        out = run_cli(capsys, "schedule", "--devices", "3",
                      "--mode", "algorithm1")
        assert "size_mb" in out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            main(["curve", "--model", "vit-giant"])
