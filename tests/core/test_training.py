"""Training-loop tests."""

import numpy as np
import pytest

from repro import nn
from repro.core.training import (
    TrainConfig,
    evaluate,
    extract_features,
    predict_logits,
    predict_probabilities,
    train_classifier,
)


def linear_problem(n=80, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return x, y


def small_mlp(dim=4, classes=2, seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(dim, 16, rng=rng), nn.ReLU(),
                         nn.Linear(16, classes, rng=rng))


class TestTrainClassifier:
    def test_loss_decreases(self):
        x, y = linear_problem()
        result = train_classifier(small_mlp(), x, y,
                                  TrainConfig(epochs=10, lr=1e-2))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_reaches_high_accuracy_on_separable(self):
        x, y = linear_problem()
        model = small_mlp()
        result = train_classifier(model, x, y, TrainConfig(epochs=25, lr=1e-2))
        assert result.final_accuracy > 0.9

    def test_curves_have_epoch_length(self):
        x, y = linear_problem()
        result = train_classifier(small_mlp(), x, y, TrainConfig(epochs=4))
        assert len(result.train_losses) == 4
        assert len(result.train_accuracies) == 4

    def test_model_left_in_eval_mode(self):
        x, y = linear_problem()
        model = small_mlp()
        train_classifier(model, x, y, TrainConfig(epochs=1))
        assert not model.training

    def test_deterministic_given_seed(self):
        x, y = linear_problem()
        m1, m2 = small_mlp(seed=3), small_mlp(seed=3)
        r1 = train_classifier(m1, x, y, TrainConfig(epochs=3, seed=11))
        r2 = train_classifier(m2, x, y, TrainConfig(epochs=3, seed=11))
        assert r1.train_losses == r2.train_losses
        np.testing.assert_array_equal(m1[0].weight.data, m2[0].weight.data)

    def test_wall_time_recorded(self):
        x, y = linear_problem()
        result = train_classifier(small_mlp(), x, y, TrainConfig(epochs=1))
        assert result.wall_seconds > 0

    def test_grad_clip_disabled(self):
        x, y = linear_problem()
        result = train_classifier(small_mlp(), x, y,
                                  TrainConfig(epochs=2, grad_clip=None))
        assert np.isfinite(result.final_loss)


class TestInference:
    def test_predict_logits_shape(self):
        x, y = linear_problem()
        model = small_mlp()
        assert predict_logits(model, x).shape == (len(x), 2)

    def test_predict_batching_consistent(self):
        x, _ = linear_problem()
        model = small_mlp()
        a = predict_logits(model, x, batch_size=7)
        b = predict_logits(model, x, batch_size=64)
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_probabilities_normalized(self):
        x, _ = linear_problem()
        probs = predict_probabilities(small_mlp(), x)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
        assert (probs >= 0).all()

    def test_evaluate_range(self):
        x, y = linear_problem()
        acc = evaluate(small_mlp(), x, y)
        assert 0.0 <= acc <= 1.0

    def test_extract_features_uses_forward_features(self, trained_tiny_vit,
                                                    tiny_dataset):
        feats = extract_features(trained_tiny_vit, tiny_dataset.x_test[:6])
        assert feats.shape == (6, trained_tiny_vit.feature_dim())

    def test_trained_tiny_vit_beats_chance(self, trained_tiny_vit,
                                           tiny_dataset):
        acc = evaluate(trained_tiny_vit, tiny_dataset.x_test,
                       tiny_dataset.y_test)
        assert acc > 0.4  # 10-class chance is 0.1
