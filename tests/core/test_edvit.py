"""ED-ViT orchestrator tests: the full Fig.-1 pipeline at tiny scale."""

import numpy as np
import pytest

from repro.core.edvit import EDViTConfig, EDViTSystem, build_edvit
from repro.edge.device import make_fleet, raspberry_pi_4b
from repro.edge.simulator import simulate_inference
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20

FAST_PRUNE = PruneConfig(probe_size=12, head_adapt_epochs=2,
                         stage_finetune_epochs=1, retrain_epochs=4,
                         backend="kl")


@pytest.fixture(scope="module")
def built_system(trained_tiny_vit, tiny_dataset):
    fleet = [d.to_spec() for d in make_fleet(2)]
    return build_edvit(
        trained_tiny_vit, tiny_dataset, fleet,
        EDViTConfig(num_devices=2, memory_budget_bytes=64 * MB,
                    prune=FAST_PRUNE, fusion_epochs=12, fusion_lr=3e-3,
                    seed=0))


class TestBuild:
    def test_submodel_count(self, built_system):
        assert len(built_system.submodels) == 2

    def test_partition_covers_classes(self, built_system):
        classes = sorted(c for g in built_system.partition for c in g)
        assert classes == list(range(10))

    def test_plan_places_every_submodel(self, built_system):
        assert len(built_system.plan.mapping) == 2

    def test_accuracy_beats_chance(self, built_system, tiny_dataset):
        assert built_system.accuracy(tiny_dataset) > 0.3

    def test_softmax_average_works(self, built_system, tiny_dataset):
        acc = built_system.softmax_average_accuracy(tiny_dataset)
        assert 0.0 <= acc <= 1.0

    def test_predictions_shape(self, built_system, tiny_dataset):
        pred = built_system.predict(tiny_dataset.x_test[:5])
        assert pred.shape == (5,)

    def test_total_size_within_budget(self, built_system):
        assert built_system.total_size_mb() <= 64

    def test_reporting_helpers(self, built_system):
        assert len(built_system.submodel_sizes_mb()) == 2
        assert all(f > 0 for f in built_system.submodel_flops())
        assert all(d > 0 for d in built_system.feature_dims())


class TestDeploymentExport:
    def test_simulates_end_to_end(self, built_system):
        fleet = make_fleet(2)
        spec = built_system.deployment(fleet, raspberry_pi_4b("pi-fusion"))
        result = simulate_inference(spec, num_samples=1)
        assert result.max_latency > 0

    def test_placement_follows_plan(self, built_system):
        fleet = make_fleet(2)
        spec = built_system.deployment(fleet, raspberry_pi_4b("pi-fusion"))
        for model_id, device_id in spec.placement.items():
            assert device_id == built_system.plan.mapping[model_id]


class TestSingleDevice:
    def test_n1_is_prune_only(self, trained_tiny_vit, tiny_dataset):
        fleet = [d.to_spec() for d in make_fleet(1)]
        system = build_edvit(
            trained_tiny_vit, tiny_dataset, fleet,
            EDViTConfig(num_devices=1, memory_budget_bytes=64 * MB,
                        prune=FAST_PRUNE, fusion_epochs=3, seed=0))
        assert len(system.submodels) == 1
        assert system.submodels[0].model.config.num_classes == 10
        # Pruned: smaller than the original.
        assert (system.submodels[0].model.num_parameters()
                < trained_tiny_vit.num_parameters())
