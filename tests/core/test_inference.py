"""Batched inference entrypoint: repro.core.predict and friends."""

import numpy as np
import pytest

from repro import nn
from repro.core import inference
from repro.data.loaders import DataLoader
from repro.models.vit import ViTConfig, VisionTransformer


@pytest.fixture(scope="module")
def model():
    cfg = ViTConfig(image_size=16, patch_size=4, num_classes=10, depth=2,
                    embed_dim=32, num_heads=4)
    return VisionTransformer(cfg, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(10, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, size=10)
    return x, y


def _reference_logits(model, x):
    model.eval()
    with nn.no_grad():
        return model(nn.Tensor(x)).data.copy()


def test_predict_matches_single_batch_forward(model, data):
    x, _ = data
    ref = _reference_logits(model, x)
    np.testing.assert_allclose(inference.predict(model, x, batch_size=64),
                               ref, rtol=1e-5, atol=1e-5)


def test_predict_is_batch_size_invariant(model, data):
    x, _ = data
    full = inference.predict(model, x, batch_size=64)
    for bs in (1, 3, 10):
        np.testing.assert_allclose(inference.predict(model, x, batch_size=bs),
                                   full, rtol=1e-5, atol=1e-5)


def test_predict_accepts_dataloader(model, data):
    x, y = data
    loader = DataLoader(x, y, batch_size=4, shuffle=False)
    np.testing.assert_allclose(inference.predict(model, loader),
                               inference.predict(model, x), rtol=1e-5, atol=1e-5)


def test_predict_accepts_batch_iterable(model, data):
    x, _ = data
    batches = [x[:4], x[4:]]
    np.testing.assert_allclose(inference.predict(model, batches),
                               inference.predict(model, x), rtol=1e-5, atol=1e-5)


def test_predict_outputs_are_caller_owned(model, data):
    x, _ = data
    first = inference.predict(model, x)
    second = inference.predict(model, x)
    assert first is not second
    np.testing.assert_allclose(first, second, rtol=0, atol=0)


def test_predict_empty_raises(model):
    with pytest.raises(ValueError):
        inference.predict(model, [])


def test_predict_labels_and_evaluate(model, data):
    x, y = data
    labels = inference.predict_labels(model, x)
    assert labels.shape == (10,)
    acc = inference.evaluate(model, x, y)
    assert acc == pytest.approx(float((labels == y).mean()))


def test_predict_probabilities_normalized(model, data):
    x, _ = data
    probs = inference.predict_probabilities(model, x, batch_size=4)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
    assert (probs >= 0).all()


def test_extract_features_matches_forward_features(model, data):
    x, _ = data
    model.eval()
    with nn.no_grad():
        ref = model.forward_features(nn.Tensor(x)).data.copy()
    np.testing.assert_allclose(inference.extract_features(model, x, batch_size=3),
                               ref, rtol=1e-5, atol=1e-5)


def test_iter_batches_shapes(data):
    x, y = data
    batches = list(inference.iter_batches(x, 4))
    assert [len(b) for b in batches] == [4, 4, 2]
    loader = DataLoader(x, y, batch_size=5, shuffle=False)
    assert [len(b) for b in inference.iter_batches(loader)] == [5, 5]


def test_benchmark_forward_modes(model):
    x = np.random.default_rng(2).normal(size=(1, 3, 16, 16)).astype(np.float32)
    for mode in ("graph", "no_grad", "inference"):
        assert inference.benchmark_forward(model, x, repeats=1, mode=mode) > 0
    with pytest.raises(ValueError):
        inference.benchmark_forward(model, x, mode="warp-speed")


def test_predict_releases_workspaces_by_default(model, data):
    x, _ = data
    inference.predict(model, x, batch_size=4)
    sizes = [len(m.workspace) for m in model.modules()
             if "_workspace" in m.__dict__]
    assert sum(sizes) == 0
    inference.predict(model, x, batch_size=4, keep_workspaces=True)
    sizes = [len(m.__dict__["_workspace"]) for m in model.modules()
             if "_workspace" in m.__dict__]
    assert sum(sizes) > 0
    model.clear_workspaces()


def test_concurrent_predict_on_shared_model_is_correct(model, data):
    """Per-thread workspace storage: concurrent inference on one model must
    match the single-threaded result exactly (regression for a scratch
    corruption bug where threads shared workspace buffers)."""
    import threading

    x, _ = data
    expected = inference.predict(model, x, batch_size=4)
    results = [None] * 4

    def worker(i):
        results[i] = inference.predict(model, x, batch_size=4)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for got in results:
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)
