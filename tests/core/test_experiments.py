"""Experiment-harness tests: the analytic table/figure generators."""

import pytest

from repro.core.experiments import (
    PAPER_BUDGETS_MB,
    PAPER_DEVICE_COUNTS,
    communication_rows,
    deployment_for_point,
    latency_memory_curve,
    paper_hp,
    paper_kept_heads,
    plan_split,
    table1_rows,
    table2_rows,
)
from repro.models.vit import vit_base_config, vit_small_config


class TestPaperSchedule:
    def test_vit_base_kept_heads(self):
        # Implied by the paper's sizes/FLOPs: 6/6/4/3/2 of 12 heads.
        assert [paper_kept_heads(12, n) for n in PAPER_DEVICE_COUNTS] == \
            [6, 6, 4, 3, 2]

    def test_vit_small_ten_devices_keeps_one(self):
        assert paper_kept_heads(6, 10) == 1

    def test_hp_complements_kept(self):
        assert paper_hp(12, 10) == 10

    def test_fallback_for_unlisted_n(self):
        assert 1 <= paper_kept_heads(12, 7) < 12


class TestTable1:
    def test_three_rows(self):
        rows = table1_rows()
        assert [r["Model"] for r in rows] == ["ViT-Small", "ViT-Base",
                                              "ViT-Large"]

    def test_base_latency_anchor(self):
        rows = table1_rows()
        base = next(r for r in rows if r["Model"] == "ViT-Base")
        assert base["Latency (ms)"] == pytest.approx(36940, abs=20)

    def test_params_match_paper(self):
        rows = table1_rows()
        assert rows[0]["Params (M)"] == pytest.approx(22.1, abs=0.1)
        assert rows[2]["Params (M)"] == pytest.approx(304.4, abs=0.2)


class TestTable2:
    def test_flops_decrease_with_devices(self):
        rows = table2_rows()
        for row in rows:
            values = [row["Original (G)"], row["N=2 (G)"], row["N=3 (G)"],
                      row["N=5 (G)"], row["N=10 (G)"]]
            assert values == sorted(values, reverse=True)

    def test_n2_matches_vit_small(self):
        rows = table2_rows()
        cifar = next(r for r in rows if r["Dataset"] == "CIFAR-10")
        assert cifar["N=2 (G)"] == pytest.approx(4.25, abs=0.05)

    def test_gtzan_slightly_cheaper(self):
        rows = table2_rows()
        cifar = next(r for r in rows if r["Dataset"] == "CIFAR-10")
        gtzan = next(r for r in rows if r["Dataset"] == "GTZAN")
        assert gtzan["Original (G)"] < cifar["Original (G)"]


class TestPlanSplit:
    def test_paper_mode_uniform_hps(self):
        point = plan_split(vit_base_config(num_classes=10), 5, 10,
                           PAPER_BUDGETS_MB["vit-base"], "paper")
        assert len(set(point.hps)) == 1

    def test_algorithm1_mode_respects_budget(self):
        point = plan_split(vit_base_config(num_classes=10), 5, 10,
                           PAPER_BUDGETS_MB["vit-base"], "algorithm1")
        assert point.total_size_mb <= PAPER_BUDGETS_MB["vit-base"]
        assert point.schedule is not None

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            plan_split(vit_base_config(), 2, 10, 180, "magic")


class TestLatencyMemoryCurve:
    def test_latency_monotone_beyond_two(self):
        rows = latency_memory_curve(vit_base_config(num_classes=10),
                                    budget_mb=180)
        latencies = [r["latency_s"] for r in rows]
        assert latencies[1] >= latencies[2] >= latencies[3] >= latencies[4]

    def test_speedup_at_ten_devices_matches_paper(self):
        rows = latency_memory_curve(vit_base_config(num_classes=10),
                                    budget_mb=180, device_counts=(10,))
        # Paper: 28.9x; simulator gives ~28.2x.
        assert rows[0]["speedup_vs_original"] == pytest.approx(28.9, rel=0.1)

    def test_memory_spike_at_two_devices(self):
        rows = latency_memory_curve(vit_base_config(num_classes=10),
                                    budget_mb=180)
        mem = {r["devices"]: r["total_memory_mb"] for r in rows}
        assert mem[2] > mem[1]
        assert mem[2] > mem[3] > mem[5] > mem[10] / 1.0 or mem[3] > mem[10]

    def test_n10_per_model_size_near_paper(self):
        rows = latency_memory_curve(vit_base_config(num_classes=10),
                                    budget_mb=180, device_counts=(10,))
        assert rows[0]["per_model_mb"] == pytest.approx(9.60, rel=0.05)

    def test_vit_small_budget(self):
        rows = latency_memory_curve(vit_small_config(num_classes=10),
                                    budget_mb=PAPER_BUDGETS_MB["vit-small"],
                                    device_counts=(10,))
        assert rows[0]["per_model_mb"] == pytest.approx(2.58, rel=0.15)


class TestCommunication:
    def test_reduction_reaches_294x(self):
        rows = communication_rows()
        ten = next(r for r in rows if r["devices"] == 10)
        assert ten["reduction_x"] == pytest.approx(294.0, rel=0.01)

    def test_feature_bytes_monotone_nonincreasing(self):
        rows = communication_rows()
        sizes = [r["feature_bytes"] for r in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_transfer_under_10ms(self):
        rows = communication_rows()
        assert all(r["transfer_ms"] < 10 for r in rows)


class TestDeploymentForPoint:
    def test_round_robin_placement(self):
        point = plan_split(vit_base_config(num_classes=10), 3, 10, 180,
                           "paper")
        spec = deployment_for_point(point, num_classes=10)
        assert len(set(spec.placement.values())) == 3


class TestTrainedAccuracyCurve:
    def test_accuracy_curve_minimal(self):
        """The trained harness runs end-to-end at minimal scale."""
        from repro.core.experiments import TrainedExperimentConfig, accuracy_curve
        from repro.data import cifar10_like

        ds = cifar10_like(image_size=16, train_per_class=12, test_per_class=6)
        cfg = TrainedExperimentConfig(train_epochs=3, prune_probe=6,
                                      retrain_epochs=1, fusion_epochs=3)
        rows = accuracy_curve(ds, cfg, device_counts=(1, 2), budget_mb=10.0)
        assert [r["devices"] for r in rows] == [1, 2]
        for row in rows:
            assert 0.0 <= row["accuracy"] <= 1.0
            assert row["total_memory_mb"] > 0


class TestRuntimeSpeedupRows:
    def test_modes_and_positive_latencies(self):
        from repro.core.experiments import runtime_speedup_rows
        from repro.models.vit import ViTConfig

        cfg = ViTConfig(image_size=16, patch_size=4, num_classes=10,
                        depth=1, embed_dim=16, num_heads=2)
        rows = runtime_speedup_rows(cfg, repeats=1)
        assert [r["mode"] for r in rows] == ["graph", "no_grad", "inference"]
        assert all(r["latency_s"] > 0 for r in rows)
        assert rows[0]["speedup_vs_graph"] == 1.0
