"""Metric/table formatting tests."""

import pytest

from repro.core.metrics import format_mean_std, format_table, mean_std, ratio


class TestFormatTable:
    def test_renders_header_and_rows(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, 2 rows

    def test_column_selection_and_order(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert out.splitlines()[0].strip().startswith("b")

    def test_missing_cell_is_blank(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "3" in out

    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_float_formatting(self):
        out = format_table([{"v": 1.23456789}], floatfmt=".2f")
        assert "1.23" in out


class TestStats:
    def test_mean_std(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_single_value(self):
        mean, std = mean_std([5.0])
        assert mean == 5.0
        assert std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_format_mean_std_paper_style(self):
        out = format_mean_std([0.8911, 0.8909, 0.8913])
        assert out.startswith("89.1")
        assert "±" in out

    def test_ratio(self):
        assert ratio(36.94, 1.28) == pytest.approx(28.9, abs=0.1)

    def test_ratio_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1.0, 0.0)
