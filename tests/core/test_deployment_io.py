"""Deployment-bundle save/load tests."""

import json

import numpy as np
import pytest

from repro.core.deployment_io import (
    MANIFEST_NAME,
    load_system,
    save_system,
    submodel_file_for_device,
)
from repro.core.edvit import EDViTConfig, build_edvit
from repro.edge.device import make_fleet
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20


@pytest.fixture(scope="module")
def saved_bundle(trained_tiny_vit, tiny_dataset, tmp_path_factory):
    fleet = [d.to_spec() for d in make_fleet(2)]
    system = build_edvit(
        trained_tiny_vit, tiny_dataset, fleet,
        EDViTConfig(num_devices=2, memory_budget_bytes=64 * MB,
                    prune=PruneConfig(probe_size=8, head_adapt_epochs=1,
                                      stage_finetune_epochs=0,
                                      retrain_epochs=2, backend="magnitude"),
                    fusion_epochs=8, fusion_lr=3e-3, seed=0))
    directory = tmp_path_factory.mktemp("bundle")
    save_system(system, directory)
    return system, directory


class TestSaveSystem:
    def test_writes_all_files(self, saved_bundle):
        system, directory = saved_bundle
        assert (directory / MANIFEST_NAME).exists()
        assert (directory / "fusion.npz").exists()
        for i in range(len(system.submodels)):
            assert (directory / f"submodel-{i}.npz").exists()

    def test_manifest_content(self, saved_bundle):
        system, directory = saved_bundle
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["num_classes"] == 10
        assert len(manifest["partition"]) == 2
        assert set(manifest["placement"]) == {"submodel-0", "submodel-1"}


class TestLoadSystem:
    def test_roundtrip_predictions_identical(self, saved_bundle, tiny_dataset):
        system, directory = saved_bundle
        restored = load_system(directory)
        x = tiny_dataset.x_test[:12]
        np.testing.assert_array_equal(system.predict(x), restored.predict(x))

    def test_roundtrip_accuracy_identical(self, saved_bundle, tiny_dataset):
        system, directory = saved_bundle
        restored = load_system(directory)
        assert restored.accuracy(tiny_dataset) == pytest.approx(
            system.accuracy(tiny_dataset))

    def test_roundtrip_metadata(self, saved_bundle):
        system, directory = saved_bundle
        restored = load_system(directory)
        assert restored.partition == system.partition
        assert restored.plan.mapping == system.plan.mapping
        assert [sm.classes for sm in restored.submodels] == \
            [sm.classes for sm in system.submodels]

    def test_version_check(self, saved_bundle):
        _, directory = saved_bundle
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["format_version"] = 99
        bad_dir = directory.parent / "bad"
        bad_dir.mkdir(exist_ok=True)
        (bad_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_system(bad_dir)


class TestOpsHelpers:
    def test_files_for_device(self, saved_bundle):
        system, directory = saved_bundle
        device_id = system.plan.mapping["submodel-0"]
        files = submodel_file_for_device(directory, device_id)
        assert any(f.name == "submodel-0.npz" for f in files)

    def test_files_for_unknown_device_empty(self, saved_bundle):
        _, directory = saved_bundle
        assert submodel_file_for_device(directory, "ghost") == []
