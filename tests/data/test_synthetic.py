"""Synthetic data generator tests: determinism, class structure, subsetting."""

import numpy as np
import pytest

from repro.data.synthetic import (
    Dataset,
    ImagePrototypeBank,
    SpectrogramPrototypeBank,
    SyntheticSpec,
    make_image_dataset,
    make_spectrogram_dataset,
)


def small_spec(**kw):
    defaults = dict(num_classes=4, image_size=16, channels=3, noise_std=0.3)
    defaults.update(kw)
    return SyntheticSpec(**defaults)


class TestImageBank:
    def test_prototypes_deterministic_per_class_seed(self):
        a = ImagePrototypeBank(small_spec(class_seed=9))
        b = ImagePrototypeBank(small_spec(class_seed=9))
        np.testing.assert_array_equal(a.prototypes, b.prototypes)

    def test_different_seed_different_prototypes(self):
        a = ImagePrototypeBank(small_spec(class_seed=1))
        b = ImagePrototypeBank(small_spec(class_seed=2))
        assert not np.allclose(a.prototypes, b.prototypes)

    def test_sample_shape_and_dtype(self):
        bank = ImagePrototypeBank(small_spec())
        x = bank.sample(np.random.default_rng(0), np.array([0, 1, 2]))
        assert x.shape == (3, 3, 16, 16)
        assert x.dtype == np.float32

    def test_same_class_samples_closer_than_cross_class(self):
        spec = small_spec(noise_std=0.1, shift_pixels=0, prototypes_per_class=1)
        bank = ImagePrototypeBank(spec)
        rng = np.random.default_rng(0)
        a1 = bank.sample(rng, np.zeros(8, dtype=int))
        a2 = bank.sample(rng, np.zeros(8, dtype=int))
        b = bank.sample(rng, np.ones(8, dtype=int))
        within = np.abs(a1 - a2).mean()
        across = np.abs(a1 - b).mean()
        assert within < across


class TestSpectrogramBank:
    def test_single_channel_enforced(self):
        with pytest.raises(ValueError):
            SpectrogramPrototypeBank(small_spec(channels=3))

    def test_sample_shape(self):
        bank = SpectrogramPrototypeBank(small_spec(channels=1))
        x = bank.sample(np.random.default_rng(0), np.array([0, 1]))
        assert x.shape == (2, 1, 16, 16)

    def test_classes_have_distinct_signatures(self):
        spec = small_spec(channels=1, noise_std=0.01)
        bank = SpectrogramPrototypeBank(spec)
        rng = np.random.default_rng(0)
        a = bank.sample(rng, np.zeros(4, dtype=int)).mean(axis=0)
        b = bank.sample(rng, np.full(4, 1, dtype=int)).mean(axis=0)
        assert np.abs(a - b).mean() > 0.01


class TestDatasetFactory:
    def test_reproducible_with_seed(self):
        a = make_image_dataset("t", small_spec(), 4, 2, seed=5)
        b = make_image_dataset("t", small_spec(), 4, 2, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_split_sizes(self):
        ds = make_image_dataset("t", small_spec(), 6, 3, seed=0)
        assert len(ds.x_train) == 4 * 6
        assert len(ds.x_test) == 4 * 3

    def test_balanced_labels(self):
        ds = make_image_dataset("t", small_spec(), 5, 2, seed=0)
        _, counts = np.unique(ds.y_train, return_counts=True)
        assert (counts == 5).all()

    def test_image_shape_property(self):
        ds = make_image_dataset("t", small_spec(), 2, 1, seed=0)
        assert ds.image_shape == (3, 16, 16)

    def test_spectrogram_dataset(self):
        ds = make_spectrogram_dataset("a", small_spec(channels=1), 3, 2, seed=0)
        assert ds.image_shape == (1, 16, 16)
        assert ds.num_classes == 4


class TestSubsetOfClasses:
    def make(self):
        return make_image_dataset("t", small_spec(), 4, 2, seed=0)

    def test_filters_samples(self):
        sub = self.make().subset_of_classes([1, 3])
        assert len(sub.x_train) == 8
        assert set(np.unique(sub.y_train)) == {0, 1}

    def test_remap_follows_given_order(self):
        ds = self.make()
        sub = ds.subset_of_classes([3, 1])
        # class 3 -> 0, class 1 -> 1
        original = ds.y_train[np.isin(ds.y_train, [1, 3])]
        np.testing.assert_array_equal(sub.y_train == 0, original == 3)

    def test_no_remap_keeps_labels(self):
        sub = self.make().subset_of_classes([1, 3], remap=False)
        assert set(np.unique(sub.y_train)) == {1, 3}
        assert sub.num_classes == 4

    def test_num_classes_after_remap(self):
        assert self.make().subset_of_classes([0, 2]).num_classes == 2

    def test_name_records_classes(self):
        assert "1,3" in self.make().subset_of_classes([1, 3]).name


class TestOneVsRestDataset:
    def make(self):
        from repro.data.synthetic import make_image_dataset

        spec = small_spec()
        return make_image_dataset("t", spec, 8, 4, seed=0)

    def test_binary_labels(self):
        import numpy as np
        from repro.data.synthetic import one_vs_rest_dataset

        ds = one_vs_rest_dataset(self.make(), 2, np.random.default_rng(0))
        assert ds.num_classes == 2
        assert set(np.unique(ds.y_train)) == {0, 1}

    def test_balanced_by_default(self):
        import numpy as np
        from repro.data.synthetic import one_vs_rest_dataset

        ds = one_vs_rest_dataset(self.make(), 1, np.random.default_rng(0))
        positives = int((ds.y_train == 1).sum())
        negatives = int((ds.y_train == 0).sum())
        assert positives == negatives

    def test_positive_samples_come_from_class(self):
        import numpy as np
        from repro.data.synthetic import one_vs_rest_dataset

        base = self.make()
        ds = one_vs_rest_dataset(base, 3, np.random.default_rng(0))
        # every positive sample exists in the base class-3 pool
        pool = base.x_train[base.y_train == 3]
        for x in ds.x_train[ds.y_train == 1]:
            assert any(np.array_equal(x, p) for p in pool)

    def test_negative_ratio(self):
        import numpy as np
        from repro.data.synthetic import one_vs_rest_dataset

        ds = one_vs_rest_dataset(self.make(), 0, np.random.default_rng(0),
                                 negative_ratio=2.0)
        assert int((ds.y_train == 0).sum()) == 2 * int((ds.y_train == 1).sum())
