"""DataLoader tests."""

import numpy as np
import pytest

from repro.data.loaders import DataLoader


def make_data(n=10):
    x = np.arange(n, dtype=np.float32).reshape(n, 1)
    y = np.arange(n, dtype=np.int64)
    return x, y


class TestDataLoader:
    def test_batch_count_without_drop(self):
        x, y = make_data(10)
        assert len(DataLoader(x, y, batch_size=3)) == 4

    def test_batch_count_with_drop_last(self):
        x, y = make_data(10)
        assert len(DataLoader(x, y, batch_size=3, drop_last=True)) == 3

    def test_covers_all_samples(self):
        x, y = make_data(10)
        seen = []
        for xb, yb in DataLoader(x, y, batch_size=3, shuffle=True,
                                 rng=np.random.default_rng(0)):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_drop_last_truncates(self):
        x, y = make_data(10)
        total = sum(len(yb) for _, yb in DataLoader(x, y, batch_size=3,
                                                    drop_last=True))
        assert total == 9

    def test_x_y_stay_aligned(self):
        x, y = make_data(20)
        for xb, yb in DataLoader(x, y, batch_size=4, shuffle=True,
                                 rng=np.random.default_rng(1)):
            np.testing.assert_array_equal(xb[:, 0].astype(np.int64), yb)

    def test_no_shuffle_keeps_order(self):
        x, y = make_data(6)
        first_batch = next(iter(DataLoader(x, y, batch_size=3, shuffle=False)))
        np.testing.assert_array_equal(first_batch[1], [0, 1, 2])

    def test_reshuffles_between_epochs(self):
        x, y = make_data(32)
        loader = DataLoader(x, y, batch_size=32, shuffle=True,
                            rng=np.random.default_rng(2))
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 1)), np.zeros(4))

    def test_invalid_batch_size_raises(self):
        x, y = make_data(4)
        with pytest.raises(ValueError):
            DataLoader(x, y, batch_size=0)
