"""Named dataset factory tests: the five paper-benchmark analogues."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASET_FACTORIES,
    caltech_like,
    cifar10_like,
    gtzan_like,
    load_dataset,
    mnist_like,
    speech_command_like,
)


class TestFactories:
    def test_cifar_is_rgb_10_classes(self):
        ds = cifar10_like(image_size=16, train_per_class=2, test_per_class=1)
        assert ds.num_classes == 10
        assert ds.image_shape == (3, 16, 16)

    def test_mnist_is_grayscale(self):
        ds = mnist_like(image_size=16, train_per_class=2, test_per_class=1)
        assert ds.image_shape == (1, 16, 16)

    def test_caltech_configurable_classes(self):
        ds = caltech_like(num_classes=20, image_size=16, train_per_class=2,
                          test_per_class=1)
        assert ds.num_classes == 20

    def test_gtzan_is_audio_like(self):
        ds = gtzan_like(image_size=16, train_per_class=2, test_per_class=1)
        assert ds.num_classes == 10
        assert ds.image_shape == (1, 16, 16)

    def test_speech_command_default_12_classes(self):
        ds = speech_command_like(image_size=16, train_per_class=2,
                                 test_per_class=1)
        assert ds.num_classes == 12

    def test_224_resolution_supported(self):
        ds = cifar10_like(image_size=224, train_per_class=1, test_per_class=1)
        assert ds.image_shape == (3, 224, 224)


class TestRegistry:
    def test_five_datasets_registered(self):
        assert set(DATASET_FACTORIES) == {"cifar10", "mnist", "caltech",
                                          "gtzan", "speech-command"}

    def test_load_dataset(self):
        ds = load_dataset("mnist", image_size=16, train_per_class=2,
                          test_per_class=1)
        assert ds.name == "mnist-like"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_distinct_datasets_have_distinct_content(self):
        a = cifar10_like(image_size=16, train_per_class=2, test_per_class=1)
        b = caltech_like(num_classes=10, image_size=16, train_per_class=2,
                         test_per_class=1)
        assert not np.allclose(a.x_train[:4], b.x_train[:4])
