"""Warm boot end to end: plan → store → checkpoint-load, no retraining."""

import numpy as np
import pytest

from repro.planning import (
    FUSION_ARTIFACT,
    DeploymentPlan,
    PlannedSystem,
    plan_artifact_digests,
    plan_demo_system,
)
from repro.serving import build_demo_system
from repro.store import ArtifactCorrupt, ArtifactStore


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """One trained plan + the store its cold boot populated."""
    store = ArtifactStore(tmp_path_factory.mktemp("artifacts"))
    system = plan_demo_system(num_workers=2, seed=0, train_fusion=True,
                              fusion_epochs=2, store=store)
    return system, store


def eval_xy(system):
    dataset = system.eval_dataset()
    return dataset.x_test.astype(np.float32), np.asarray(dataset.y_test)


class TestPlanArtifacts:
    def test_cold_boot_populates_store(self, populated):
        system, store = populated
        assert not system.warm_booted
        assert len(store) == len(system.plan.submodels) + 1
        for digest in system.plan.artifacts.values():
            assert store.has(digest)

    def test_refs_cover_every_submodel_and_fusion(self, populated):
        system, _ = populated
        expected = set(system.plan.model_ids) | {FUSION_ARTIFACT}
        assert set(system.plan.artifacts) == expected

    def test_refs_survive_json_roundtrip(self, populated):
        system, _ = populated
        rebuilt = DeploymentPlan.from_json(system.plan.to_json())
        assert rebuilt.artifacts == system.plan.artifacts

    def test_recipes_match_recorded_refs(self, populated):
        system, _ = populated
        assert plan_artifact_digests(system.plan) == system.plan.artifacts

    def test_codec_and_scoring_do_not_change_digests(self, populated):
        system, _ = populated
        plan = DeploymentPlan.from_json(system.plan.to_json())
        plan.codec = "q8"
        plan.build["scoring"] = {"des_samples": 99}
        assert plan_artifact_digests(plan) == system.plan.artifacts


class TestWarmBoot:
    def test_from_plan_warm_boots_without_training(self, populated,
                                                   monkeypatch):
        system, store = populated
        # Any attempt to train during a warm boot is the regression the
        # store exists to prevent — make it explode.
        monkeypatch.setattr("repro.planning.execute.train_demo_system",
                            lambda *a, **k: pytest.fail(
                                "warm boot must not retrain"))
        plan = DeploymentPlan.from_json(system.plan.to_json())
        warm = PlannedSystem.from_plan(plan, store=store)
        assert warm.warm_booted

    def test_warm_accuracy_matches_cold_exactly(self, populated):
        system, store = populated
        plan = DeploymentPlan.from_json(system.plan.to_json())
        warm = PlannedSystem.from_plan(plan, store=store)
        x, y = eval_xy(system)
        assert warm.local_accuracy(x, y) == system.local_accuracy(x, y)
        np.testing.assert_array_equal(warm.local_fused_labels(x),
                                      system.local_fused_labels(x))

    def test_missing_artifact_falls_back_to_cold(self, populated, tmp_path):
        system, store = populated
        plan = DeploymentPlan.from_json(system.plan.to_json())
        empty = ArtifactStore(tmp_path / "empty")
        rebuilt = PlannedSystem.from_plan(plan, store=empty)
        assert not rebuilt.warm_booted
        # ... and the fallback populated the new store for next time.
        assert len(empty) == len(plan.submodels) + 1
        x, y = eval_xy(system)
        assert rebuilt.local_accuracy(x, y) == system.local_accuracy(x, y)

    def test_corrupt_artifact_raises_not_retrains(self, populated, tmp_path):
        system, store = populated
        plan = DeploymentPlan.from_json(system.plan.to_json())
        bad = ArtifactStore(tmp_path / "bad")
        PlannedSystem.from_plan(DeploymentPlan.from_json(system.plan.to_json()),
                                store=bad)
        victim = bad.object_path(plan.artifacts[plan.model_ids[0]])
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorrupt):
            PlannedSystem.from_plan(plan, store=bad)

    def test_plan_demo_system_warm_boots(self, populated):
        system, store = populated
        again = plan_demo_system(num_workers=2, seed=0, train_fusion=True,
                                 fusion_epochs=2, store=store)
        assert again.warm_booted
        x, y = eval_xy(system)
        assert again.local_accuracy(x, y) == system.local_accuracy(x, y)

    def test_different_seed_misses_store(self, populated):
        _, store = populated
        other = plan_demo_system(num_workers=2, seed=7, train_fusion=True,
                                 fusion_epochs=2, store=store)
        assert not other.warm_booted


class TestDemoSystemStore:
    def test_demo_cold_then_warm(self, tmp_path):
        store = ArtifactStore(tmp_path / "demo")
        cold = build_demo_system(num_workers=2, train_fusion=True,
                                 fusion_epochs=2, store=store)
        assert not cold.warm_booted and len(store) == 3
        warm = build_demo_system(num_workers=2, train_fusion=True,
                                 fusion_epochs=2, store=store)
        assert warm.warm_booted
        x = np.random.default_rng(0).normal(
            size=(4, *cold.input_shape)).astype(np.float32)
        np.testing.assert_array_equal(warm.local_fused_labels(x),
                                      cold.local_fused_labels(x))
        # The worker specs ship the warm-loaded weights too.
        for spec_w, spec_c in zip(warm.specs, cold.specs):
            assert spec_w.state_blob == spec_c.state_blob

    def test_demo_settings_change_digests(self, tmp_path):
        store = ArtifactStore(tmp_path / "demo")
        build_demo_system(num_workers=2, train_fusion=True,
                          fusion_epochs=2, store=store)
        other = build_demo_system(num_workers=2, train_fusion=True,
                                  fusion_epochs=3, store=store)
        assert not other.warm_booted   # more epochs = different weights
