"""Artifact-store unit tests: digests, integrity, LRU retention."""

import json
import time

import numpy as np
import pytest

from repro import nn
from repro.store import (
    ArtifactCorrupt,
    ArtifactMissing,
    ArtifactStore,
    recipe_digest,
)


def small_model(seed: int = 0) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(),
                         nn.Linear(8, 3, rng=rng))


class TestRecipeDigest:
    def test_deterministic(self):
        recipe = {"kind": "vit", "seed": 3, "config": {"embed_dim": 8}}
        assert recipe_digest(recipe) == recipe_digest(dict(recipe))

    def test_key_order_irrelevant(self):
        a = {"kind": "vit", "seed": 3}
        b = {"seed": 3, "kind": "vit"}
        assert recipe_digest(a) == recipe_digest(b)

    def test_any_field_changes_digest(self):
        base = {"kind": "vit", "seed": 3, "hp": 0, "classes": [0, 1],
                "config": {"embed_dim": 8}, "train": {"epochs": 2}}
        for key, value in (("kind", "vgg"), ("seed", 4), ("hp", 1),
                           ("classes", [0, 2]),
                           ("config", {"embed_dim": 16}),
                           ("train", {"epochs": 3})):
            changed = dict(base)
            changed[key] = value
            assert recipe_digest(changed) != recipe_digest(base), key

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            recipe_digest({"config": np.float32(1.0)})


class TestPutGet:
    def test_roundtrip_with_config(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = small_model()
        digest = recipe_digest({"seed": 0})
        info = store.put(digest, model, config={"layers": [4, 8, 3]},
                         kind="mlp", meta={"model_id": "m0"})
        assert info.kind == "mlp" and info.nbytes > 0
        assert store.has(digest) and digest in store and len(store) == 1
        state, config = store.get(digest)
        assert config == {"layers": [4, 8, 3]}
        clone = small_model(seed=1)
        clone.load_state_dict(state)
        x = np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32)
        np.testing.assert_array_equal(clone(nn.Tensor(x)).data,
                                      model(nn.Tensor(x)).data)

    def test_reopen_reads_manifest(self, tmp_path):
        digest = recipe_digest({"seed": 0})
        ArtifactStore(tmp_path).put(digest, small_model())
        reopened = ArtifactStore(tmp_path)
        assert reopened.has(digest)
        state, _ = reopened.get(digest)
        assert state

    def test_missing_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactMissing):
            store.get("0" * 64)
        assert not store.has("0" * 64)

    def test_state_blob_is_wire_format(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = small_model()
        digest = recipe_digest({"seed": 0})
        store.put(digest, model, config={"layers": [4, 8, 3]})
        blob = store.state_blob(digest)
        restored = nn.state_dict_from_bytes(blob)
        # Config sentinel must be stripped; only parameters ship.
        assert set(restored) == set(model.state_dict())
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(restored[key], value)

    def test_put_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = small_model()
        digest = recipe_digest({"seed": 0})
        store.put(digest, model)
        store.put(digest, model)
        assert len(store) == 1


class TestIntegrity:
    def test_corrupted_object_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = recipe_digest({"seed": 0})
        store.put(digest, small_model())
        path = store.object_path(digest)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorrupt):
            store.get(digest)

    def test_deleted_object_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = recipe_digest({"seed": 0})
        store.put(digest, small_model())
        store.object_path(digest).unlink()
        with pytest.raises(ArtifactCorrupt):
            store.verify(digest)

    def test_manifest_tamper_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = recipe_digest({"seed": 0})
        store.put(digest, small_model())
        manifest = tmp_path / "manifest.json"
        data = json.loads(manifest.read_text())
        data["artifacts"][digest]["content_sha256"] = "f" * 64
        manifest.write_text(json.dumps(data))
        with pytest.raises(ArtifactCorrupt):
            ArtifactStore(tmp_path).get(digest)


class TestRetention:
    def fill(self, store: ArtifactStore, count: int) -> list[str]:
        digests = []
        for index in range(count):
            digest = recipe_digest({"seed": index})
            store.put(digest, small_model(index))
            digests.append(digest)
        return digests

    def test_gc_noop_within_bounds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self.fill(store, 3)
        assert store.gc(max_artifacts=3) == []
        assert all(store.has(d) for d in digests)

    def test_gc_evicts_least_recently_used(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self.fill(store, 3)
        # Touch the oldest so it becomes the most recently used.
        time.sleep(0.01)
        store.get(digests[0])
        evicted = store.gc(max_artifacts=2)
        assert evicted == [digests[1]]
        assert store.has(digests[0]) and store.has(digests[2])
        assert not store.has(digests[1])
        assert not store.object_path(digests[1]).exists()

    def test_gc_max_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self.fill(store, 4)
        one = store.info(digests[0]).nbytes
        evicted = store.gc(max_bytes=2 * one + 1)
        assert len(store) <= 2 and len(evicted) == 2
        assert store.total_bytes <= 2 * one + 1

    def test_gc_keep_pins_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self.fill(store, 3)
        evicted = store.gc(max_artifacts=1, keep={digests[0]})
        assert store.has(digests[0])
        assert digests[0] not in evicted

    def test_ls_most_recent_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digests = self.fill(store, 3)
        time.sleep(0.01)
        store.get(digests[0])
        assert ArtifactStore(tmp_path).ls()[0].digest == digests[0]


class TestReadOnlyStore:
    def test_get_survives_unwritable_manifest(self, tmp_path, monkeypatch):
        # A store on a read-only volume (shared CI cache) must still
        # warm-boot: the LRU bump is best-effort, never load-blocking.
        store = ArtifactStore(tmp_path)
        digest = recipe_digest({"seed": 0})
        model = small_model()
        store.put(digest, model)

        def denied(self):
            raise PermissionError("read-only store")

        monkeypatch.setattr(ArtifactStore, "_save_manifest", denied)
        state, _ = store.get(digest)
        np.testing.assert_array_equal(state["0.weight"],
                                      model.state_dict()["0.weight"])
