"""Artifact-store observability: hit/miss/eviction metrics and spans."""

import numpy as np
import pytest

from repro import nn
from repro.obs import disable_tracing, enable_tracing, get_registry, get_tracer
from repro.store import ArtifactStore, recipe_digest


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


def small_model(seed: int = 0) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.Linear(8, 3, rng=rng))


def counter_value(name):
    return get_registry().counter(name).value


class TestStoreMetrics:
    def test_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = recipe_digest({"seed": 0})
        misses = counter_value("store.misses_total")
        hits = counter_value("store.hits_total")
        assert not store.has(digest)
        assert counter_value("store.misses_total") == misses + 1
        store.put(digest, small_model())
        assert store.has(digest)       # present: not a miss
        assert counter_value("store.misses_total") == misses + 1
        store.get(digest)
        assert counter_value("store.hits_total") == hits + 1

    def test_latency_histograms_fill(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = recipe_digest({"seed": 1})
        puts = get_registry().histogram("store.put_seconds").count
        gets = get_registry().histogram("store.get_seconds").count
        store.put(digest, small_model())
        store.get(digest)
        assert get_registry().histogram("store.put_seconds").count == \
            puts + 1
        assert get_registry().histogram("store.get_seconds").count == \
            gets + 1

    def test_gc_eviction_counter(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for seed in range(3):
            store.put(recipe_digest({"seed": seed}), small_model(seed))
        evicted_before = counter_value("store.gc_evicted_total")
        evicted = store.gc(max_artifacts=1)
        assert len(evicted) == 2
        assert counter_value("store.gc_evicted_total") == \
            evicted_before + 2


class TestStoreSpans:
    def test_put_get_gc_emit_spans(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = recipe_digest({"seed": 0})
        enable_tracing()
        store.put(digest, small_model(), kind="mlp")
        store.get(digest)
        store.gc(max_artifacts=0)
        names = [s.name for s in get_tracer().spans()]
        assert names == ["store.put", "store.get", "store.gc"]
        put, get, gc = get_tracer().spans()
        assert put.attrs["digest"] == digest[:12]
        assert put.attrs["kind"] == "mlp"
        assert gc.attrs["evicted"] == 1

    def test_no_spans_when_disabled(self, tmp_path):
        store = ArtifactStore(tmp_path)
        enable_tracing()
        get_tracer().clear()
        disable_tracing()
        store.put(recipe_digest({"seed": 0}), small_model())
        assert len(get_tracer()) == 0
