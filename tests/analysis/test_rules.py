"""Per-rule fixtures: each rule catches its seeded violation and stays
quiet on the closest legitimate pattern (the near-miss)."""

import textwrap

from repro.analysis import Project, run_check


def scan(rule, **sources):
    project = Project.from_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()})
    return run_check(project=project, rule_names=[rule])


def ids(findings):
    return [f.rule_id for f in findings]


class TestLockDiscipline:
    GUARDED = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def put(self, item):
                with self._lock:
                    self._items.append(item)
        """

    def test_unlocked_write_is_lock001(self):
        findings = scan("lock-discipline", m=self.GUARDED + """
            def clear(self):
                self._items = []
        """)
        assert ids(findings) == ["LOCK001"]
        assert "_items" in findings[0].message
        assert "clear" in findings[0].message

    def test_unlocked_read_is_lock002(self):
        findings = scan("lock-discipline", m=self.GUARDED + """
            def peek(self):
                return list(self._items)
        """)
        assert ids(findings) == ["LOCK002"]
        assert findings[0].severity == "warning"

    def test_locked_access_is_clean(self):
        findings = scan("lock-discipline", m=self.GUARDED + """
            def pop(self):
                with self._lock:
                    return self._items.pop()
        """)
        assert findings == []

    def test_init_writes_are_exempt(self):
        assert scan("lock-discipline", m=self.GUARDED) == []

    def test_mutating_method_call_outside_lock_is_flagged(self):
        findings = scan("lock-discipline", m=self.GUARDED + """
            def sneak(self, item):
                self._items.append(item)
        """)
        assert ids(findings) == ["LOCK001"]

    def test_closure_does_not_inherit_held_locks(self):
        # The callback may run on another thread long after the with
        # block exited — the enclosing lock must not excuse it.
        findings = scan("lock-discipline", m=self.GUARDED + """
            def schedule(self, timer):
                with self._lock:
                    timer(lambda: self._items.pop())
        """)
        assert ids(findings) == ["LOCK001"]

    def test_condition_wait_for_predicate_counts_as_locked(self):
        findings = scan("lock-discipline", m="""
            import threading

            class Mailbox:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []

                def put(self, item):
                    with self._cond:
                        self._items.append(item)
                        self._cond.notify_all()

                def get(self):
                    with self._cond:
                        self._cond.wait_for(lambda: self._items)
                        return self._items.pop()
        """)
        assert findings == []

    def test_attribute_never_mutated_under_lock_is_not_guarded(self):
        findings = scan("lock-discipline", m="""
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0
                    self._name = "stats"

                def hit(self):
                    with self._lock:
                        self._hits += 1

                def label(self):
                    return self._name      # never lock-mutated: fine
        """)
        assert findings == []


class TestBackendProtocol:
    BASE = """
        class ArrayBackend:
            def matmul(self, a, b):
                return a @ b

            def softmax(self, x, axis=-1):
                return x
        """

    def test_signature_drift_is_backend002(self):
        findings = scan("backend-protocol", base=self.BASE, sub="""
            from base import ArrayBackend

            class FastBackend(ArrayBackend):
                def softmax(self, x, dim=-1):
                    return x
        """)
        assert ids(findings) == ["BACKEND002"]
        assert "FastBackend.softmax" in findings[0].message

    def test_matching_override_is_clean(self):
        findings = scan("backend-protocol", base=self.BASE, sub="""
            from base import ArrayBackend

            class FastBackend(ArrayBackend):
                def softmax(self, x, axis=-1):
                    return x * 2
        """)
        assert findings == []

    def test_registered_non_subclass_is_backend001(self):
        findings = scan("backend-protocol", base=self.BASE, reg="""
            class Imposter:
                pass

            _REGISTRY = {"imposter": Imposter}
        """)
        assert ids(findings) == ["BACKEND001"]

    def test_factory_resolving_to_subclass_is_clean(self):
        findings = scan("backend-protocol", base=self.BASE, reg="""
            from base import ArrayBackend

            class Fast(ArrayBackend):
                pass

            def _fast_factory():
                return Fast()

            _REGISTRY = {"fast": _fast_factory}

            def register_backend(name, factory):
                _REGISTRY[name] = factory

            register_backend("fast2", _fast_factory)
        """)
        assert findings == []

    def test_dynamic_binding_is_backend003(self):
        findings = scan("backend-protocol", base=self.BASE, sub="""
            from base import ArrayBackend

            class SneakyBackend(ArrayBackend):
                def __init__(self, inner):
                    for op in ("matmul",):
                        object.__setattr__(self, op, getattr(inner, op))
        """)
        assert ids(findings) == ["BACKEND003"]

    def test_profiling_backend_dynamic_binding_is_allowed(self):
        findings = scan("backend-protocol", base=self.BASE, sub="""
            from base import ArrayBackend

            class ProfilingBackend(ArrayBackend):
                def __init__(self, inner):
                    for op in ("matmul",):
                        object.__setattr__(self, op, getattr(inner, op))
        """)
        assert findings == []


class TestDigestSchema:
    def test_uncoerced_value_is_digest001(self):
        findings = scan("digest-schema", m="""
            def submodel_recipe(kind, hp):
                return {"kind": str(kind), "hp": hp}
        """)
        assert ids(findings) == ["DIGEST001"]
        assert "'hp'" in findings[0].message

    def test_coerced_values_are_clean(self):
        findings = scan("digest-schema", m="""
            def submodel_recipe(kind, hp, extras):
                recipe = {"kind": str(kind), "hp": int(hp),
                          "extras": sorted(str(e) for e in extras),
                          "mode": "a" if hp else "b",
                          "nested": {"x": 1, "y": [1.0, None, True]}}
                recipe["late"] = str(len(extras))
                return recipe
        """)
        assert findings == []

    def test_excluded_key_in_recipe_is_digest002(self):
        findings = scan("digest-schema", m="""
            def fusion_recipe(codec):
                return {"codec": str(codec)}
        """)
        assert ids(findings) == ["DIGEST002"]

    def test_excluded_keyword_at_call_site_is_digest002(self):
        findings = scan("digest-schema", m="""
            def build(plan):
                return plan.submodel_recipe("m0", codec="q8")
        """)
        assert ids(findings) == ["DIGEST002"]

    def test_non_recipe_functions_are_out_of_scope(self):
        findings = scan("digest-schema", m="""
            def demo_recipes(models):
                return {"anything": models}

            def summary(raw):
                return {"raw": raw}
        """)
        assert findings == []


class TestWireProtocol:
    def test_raw_wire_tuple_is_wire001(self):
        findings = scan("wire-protocol", m="""
            def reply(worker_id):
                return ("ready", worker_id)
        """)
        assert ids(findings) == ["WIRE001"]

    def test_string_dispatch_is_wire002(self):
        findings = scan("wire-protocol", m="""
            def handle(message):
                if message[0] == "infer":
                    return message[1]
        """)
        assert ids(findings) == ["WIRE002"]

    def test_unrelated_tuple_with_wrong_arity_is_clean(self):
        # ("error", "warning") is 2 elements; a wire ERROR is always 3.
        findings = scan("wire-protocol", m="""
            SEVERITIES = ("error", "warning")
        """)
        assert findings == []

    def test_arity_drift_in_wire_module_is_wire003(self):
        src = '''
            INFER = "infer"
            STOP = "stop"
            READY = "ready"
            FAILED = "failed"
            FEATURES = "features"
            ERROR = "error"
            STOPPED = "stopped"

            ARITY = {
                INFER: (3, 5),
                STOP: (1, 1),
                READY: (2, 2),
                FAILED: (3, 3),
                FEATURES: (4, 4),
                ERROR: (3, 3),
                STOPPED: (2, 2),
            }
        '''
        findings = scan("wire-protocol", **{"repro.edge.wire": src})
        assert ids(findings) == ["WIRE003"]
        assert "infer" in findings[0].message

    def test_real_wire_module_matches_embedded_table(self):
        import repro.analysis.rules.wire_protocol as rule
        from repro.edge import wire

        assert wire.ARITY == rule.EXPECTED_ARITY


class TestObsNaming:
    def test_single_segment_metric_is_obs001(self):
        findings = scan("obs-naming", m="""
            def setup(registry):
                return registry.counter("requests_total")
        """)
        assert ids(findings) == ["OBS001"]

    def test_histogram_without_unit_suffix_is_obs001(self):
        findings = scan("obs-naming", m="""
            def setup(registry):
                return registry.histogram("serving.occupancy")
        """)
        assert ids(findings) == ["OBS001"]

    def test_well_formed_names_are_clean(self):
        findings = scan("obs-naming", m="""
            def setup(registry, tracer, op):
                registry.counter("serving.requests_total")
                registry.counter(f"kernel.{op}_bytes_total")
                registry.histogram("store.get_seconds")
                registry.gauge("edge.inflight")
                tracer.emit("request")
                tracer.emit("request.queue", trace_id=1)
        """)
        assert findings == []

    def test_bad_span_name_is_obs002(self):
        findings = scan("obs-naming", m="""
            def setup(tracer):
                tracer.emit("Batch-Serve", trace_id=1)
        """)
        assert ids(findings) == ["OBS002"]

    def test_non_literal_metric_name_is_obs003_warning(self):
        findings = scan("obs-naming", m="""
            def setup(registry, name):
                return registry.counter(name)
        """)
        assert ids(findings) == ["OBS003"]
        assert findings[0].severity == "warning"

    def test_non_literal_span_name_is_skipped(self):
        # Span helpers forward caller-supplied names; the literal is
        # checked where it originates.
        findings = scan("obs-naming", m="""
            def emit_span(tracer, name):
                tracer.emit(name, trace_id=1)
        """)
        assert findings == []


class TestHygiene:
    def test_pickle_import_is_hyg001(self):
        findings = scan("hygiene", m="import pickle\n")
        assert ids(findings) == ["HYG001"]

    def test_eval_is_hyg002(self):
        findings = scan("hygiene", m="""
            def load(s):
                return eval(s)
        """)
        assert ids(findings) == ["HYG002"]

    def test_bare_except_is_hyg003(self):
        findings = scan("hygiene", m="""
            def safe(fn):
                try:
                    fn()
                except:
                    pass
        """)
        assert ids(findings) == ["HYG003"]

    def test_narrow_except_is_clean(self):
        findings = scan("hygiene", m="""
            def safe(fn):
                try:
                    fn()
                except Exception:
                    pass
        """)
        assert findings == []

    def test_unjoined_non_daemon_thread_is_hyg004(self):
        findings = scan("hygiene", m="""
            import threading

            def spawn(target):
                thread = threading.Thread(target=target)
                thread.start()
        """)
        assert ids(findings) == ["HYG004"]

    def test_daemon_or_joined_threads_are_clean(self):
        findings = scan("hygiene", m="""
            import threading

            def spawn(target):
                thread = threading.Thread(target=target, daemon=True)
                thread.start()

            def run(target):
                thread = threading.Thread(target=target)
                thread.start()
                thread.join()
        """)
        assert findings == []

    def test_string_join_does_not_count_as_thread_join(self):
        findings = scan("hygiene", m="""
            import threading

            def spawn(parts, target):
                thread = threading.Thread(target=target)
                thread.start()
                return ", ".join(parts)
        """)
        assert ids(findings) == ["HYG004"]

    def test_json_dumps_without_allow_nan_is_hyg005(self):
        findings = scan("hygiene", m="""
            import json

            def render(data):
                return json.dumps(data)
        """)
        assert ids(findings) == ["HYG005"]

    def test_json_dumps_with_allow_nan_false_is_clean(self):
        findings = scan("hygiene", m="""
            import json

            def render(data):
                return json.dumps(data, allow_nan=False)
        """)
        assert findings == []


class TestDriver:
    def test_syntax_error_becomes_a_finding_not_a_crash(self):
        project = Project.from_sources({"broken": "def f(:\n"})
        findings = run_check(project=project)
        assert ids(findings) == ["SYNTAX001"]

    def test_findings_are_sorted_and_stable(self):
        project = Project.from_sources({
            "b": "import pickle\n",
            "a": "import pickle\n",
        })
        findings = run_check(project=project, rule_names=["hygiene"])
        assert [f.file for f in findings] == ["a.py", "b.py"]
        assert findings == run_check(project=project,
                                     rule_names=["hygiene"])
