"""The repo-clean gate: a real scan of src/repro against the committed
baseline must report zero new findings — this is the same check CI's
``analysis-smoke`` job runs, kept in-tree so a plain pytest run catches
regressions (e.g. reverting one of the lock fixes) without CI.
"""

import time

from repro.analysis import (
    check_against_baseline,
    default_baseline_path,
    default_root,
    run_check,
)


class TestRepoIsClean:
    def test_no_new_findings_and_no_stale_entries(self):
        comparison = check_against_baseline()
        assert comparison.new == [], \
            "new analyzer findings:\n" + "\n".join(
                f.render(str(default_root())) for f in comparison.new)
        assert comparison.stale == [], \
            "stale baseline entries (fixed? run --update-baseline):\n" \
            + "\n".join(e.fingerprint for e in comparison.stale)

    def test_every_baseline_entry_has_a_documented_reason(self):
        from repro.analysis import load_baseline

        entries = load_baseline(default_baseline_path())
        assert entries, "expected committed baseline entries"
        for entry in entries:
            assert entry.reason, \
                f"baseline entry {entry.fingerprint} ({entry.file}) " \
                f"has no documented reason"

    def test_full_scan_stays_fast(self):
        # The CI gate runs under `timeout 10`; leave headroom locally.
        start = time.monotonic()
        findings = run_check()
        elapsed = time.monotonic() - start
        assert elapsed < 10.0, f"scan took {elapsed:.1f}s"
        # The scan saw the real tree (not an empty glob): the accepted
        # baseline findings are still found.
        assert len(findings) >= 4
