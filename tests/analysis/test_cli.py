"""``repro check`` CLI: exit codes 0/1/2 and stdout/stderr separation."""

import json

import pytest

from repro.cli import main

CLEAN = "def add(a, b):\n    return a + b\n"
DIRTY = "import pickle\n\n\ndef load(s):\n    return eval(s)\n"


@pytest.fixture
def tree(tmp_path):
    """A scan root and a baseline path, both under tmp."""
    root = tmp_path / "pkg"
    root.mkdir()
    baseline = tmp_path / "baseline.json"

    def write(source):
        (root / "mod.py").write_text(source)
        return ["check", "--path", str(root), "--baseline", str(baseline)]

    return write


class TestExitCodes:
    def test_clean_tree_exits_0(self, tree):
        assert main(tree(CLEAN)) == 0

    def test_new_findings_exit_1(self, tree):
        with pytest.raises(SystemExit) as excinfo:
            main(tree(DIRTY))
        assert excinfo.value.code == 1

    def test_unknown_rule_exits_2(self, tree):
        with pytest.raises(SystemExit) as excinfo:
            main(tree(CLEAN) + ["--rules", "no-such-rule"])
        assert excinfo.value.code == 2

    def test_missing_root_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--path", str(tmp_path / "nowhere")])
        assert excinfo.value.code == 2

    def test_malformed_baseline_exits_2(self, tree, tmp_path):
        (tmp_path / "baseline.json").write_text("{broken")
        with pytest.raises(SystemExit) as excinfo:
            main(tree(CLEAN))
        assert excinfo.value.code == 2

    def test_unknown_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--frobnicate"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_baselined_findings_exit_0(self, tree):
        args = tree(DIRTY)
        main(args + ["--update-baseline"])
        assert main(args) == 0

    def test_strict_fails_on_stale_entries(self, tree):
        args = tree(DIRTY)
        main(args + ["--update-baseline"])
        args = tree(CLEAN)                 # violations fixed -> stale
        assert main(args) == 0             # lax: stale is informational
        with pytest.raises(SystemExit) as excinfo:
            main(args + ["--strict"])
        assert excinfo.value.code == 1

    def test_update_baseline_after_fix_expires_entries(self, tree):
        args = tree(DIRTY)
        main(args + ["--update-baseline"])
        args = tree(CLEAN)
        main(args + ["--update-baseline"])
        assert main(args + ["--strict"]) == 0


class TestOutput:
    def test_json_stdout_is_pure_json(self, tree, capsys):
        with pytest.raises(SystemExit):
            main(tree(DIRTY) + ["--json"])
        out, err = capsys.readouterr()
        report = json.loads(out)           # would raise on stray notes
        assert report["ok"] is False
        assert {f["rule_id"] for f in report["new"]} \
            == {"HYG001", "HYG002"}
        assert report["baselined"] == [] and report["stale"] == []

    def test_text_mode_notes_go_to_stderr(self, tree, capsys):
        main(tree(CLEAN))
        out, err = capsys.readouterr()
        assert out == ""
        assert "0 new" in err

    def test_text_mode_findings_go_to_stdout_with_hints(self, tree, capsys):
        with pytest.raises(SystemExit):
            main(tree(DIRTY))
        out, err = capsys.readouterr()
        assert "HYG001" in out and "pickle" in out
        assert "hint:" in out

    def test_list_rules_names_all_builtins(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out, _ = capsys.readouterr()
        for name in ("lock-discipline", "backend-protocol", "digest-schema",
                     "wire-protocol", "obs-naming", "hygiene"):
            assert name in out
