"""Baseline lifecycle: round-trip, add/expire, multiset matching."""

import json

import pytest

from repro.analysis import (
    BaselineEntry,
    BaselineError,
    Finding,
    compare,
    load_baseline,
    save_baseline,
)


def finding(message="m", file="a.py", rule_id="HYG001", line=3):
    return Finding(rule_id, "error", file, line, message)


class TestRoundTrip:
    def test_save_then_load_preserves_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [finding("one"), finding("two", file="b.py")]
        save_baseline(path, findings)
        entries = load_baseline(path)
        assert [e.fingerprint for e in entries] \
            == [f.fingerprint for f in findings]
        assert entries[0].message == "one"

    def test_rewrite_carries_over_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        kept = finding("kept")
        save_baseline(path, [kept, finding("dropped")])
        entries = load_baseline(path)
        entries[0] = BaselineEntry(fingerprint=entries[0].fingerprint,
                                   reason="accepted: benign")
        # Rewriting after the 'dropped' finding was fixed keeps the
        # surviving entry's human reason and expires the other.
        save_baseline(path, [kept], previous=entries)
        (entry,) = load_baseline(path)
        assert entry.fingerprint == kept.fingerprint
        assert entry.reason == "accepted: benign"

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_malformed_file_raises_baseline_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_unknown_format_version_raises(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 99, "entries": []}))
        with pytest.raises(BaselineError, match="format_version"):
            load_baseline(path)


class TestCompare:
    def test_new_baselined_and_stale_are_partitioned(self):
        accepted, fixed, fresh = (finding("accepted"), finding("fixed"),
                                  finding("fresh"))
        entries = [BaselineEntry(fingerprint=accepted.fingerprint),
                   BaselineEntry(fingerprint=fixed.fingerprint)]
        comparison = compare([accepted, fresh], entries)
        assert comparison.new == [fresh]
        assert comparison.baselined == [accepted]
        assert [e.fingerprint for e in comparison.stale] \
            == [fixed.fingerprint]

    def test_duplicate_findings_need_duplicate_entries(self):
        # Same rule+file+message twice (e.g. a double-checked read hit
        # at the check and the return): one entry only excuses one.
        twice = [finding("dup"), finding("dup", line=9)]
        one_entry = [BaselineEntry(fingerprint=twice[0].fingerprint)]
        comparison = compare(twice, one_entry)
        assert len(comparison.baselined) == 1
        assert len(comparison.new) == 1
        both = one_entry * 2
        comparison = compare(twice, both)
        assert comparison.new == [] and comparison.stale == []

    def test_fingerprint_ignores_line_numbers(self):
        assert finding(line=3).fingerprint == finding(line=300).fingerprint
        assert finding("x").fingerprint != finding("y").fingerprint
