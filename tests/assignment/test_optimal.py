"""Optimal-assignment (branch-and-bound) tests and greedy-gap checks."""

import pytest

from repro.assignment.greedy import greedy_assign
from repro.assignment.optimal import brute_force_assign, optimal_assign
from repro.assignment.problem import DeviceSpec, InfeasibleAssignment, SubModelSpec, validate_plan


def device(i, mem=100, energy=100.0):
    return DeviceSpec(device_id=f"d{i}", memory_bytes=mem, energy_flops=energy)


def submodel(i, size=10, flops=10.0):
    return SubModelSpec(model_id=f"m{i}", size_bytes=size, flops_per_sample=flops)


class TestOptimalAssign:
    def test_matches_brute_force_objective(self):
        devices = [device(0, energy=100.0), device(1, energy=70.0),
                   device(2, energy=40.0)]
        models = [submodel(0, flops=30.0), submodel(1, flops=20.0),
                  submodel(2, flops=10.0)]
        bb = optimal_assign(devices, models, num_samples=1)
        bf = brute_force_assign(devices, models, num_samples=1)
        assert bb.objective == pytest.approx(bf.objective)

    def test_balances_load_better_than_worst_case(self):
        devices = [device(0, energy=100.0), device(1, energy=100.0)]
        models = [submodel(0, flops=60.0), submodel(1, flops=30.0)]
        plan = optimal_assign(devices, models, num_samples=1)
        # Optimal puts them on different devices: min residual = 40.
        assert plan.objective == pytest.approx(40.0)
        validate_plan(plan, devices, models, num_samples=1)

    def test_optimal_at_least_as_good_as_greedy(self):
        devices = [device(0, energy=90.0), device(1, energy=60.0),
                   device(2, energy=60.0)]
        models = [submodel(i, flops=f) for i, f in enumerate([50, 40, 30, 20])]
        greedy = greedy_assign(devices, models, num_samples=1)
        optimal = optimal_assign(devices, models, num_samples=1)
        assert optimal.objective >= greedy.objective - 1e-9

    def test_respects_memory(self):
        devices = [device(0, mem=10, energy=1000.0), device(1, mem=100)]
        models = [submodel(0, size=50)]
        plan = optimal_assign(devices, models, num_samples=1)
        assert plan.mapping["m0"] == "d1"

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleAssignment):
            optimal_assign([device(0, mem=1)], [submodel(0, size=50)], 1)

    def test_no_devices_raises(self):
        with pytest.raises(InfeasibleAssignment):
            optimal_assign([], [submodel(0)], 1)

    def test_state_limit_guard(self):
        devices = [device(i) for i in range(6)]
        models = [submodel(i, size=1, flops=1.0) for i in range(8)]
        with pytest.raises(InfeasibleAssignment):
            optimal_assign(devices, models, num_samples=1, max_states=10)


class TestBruteForce:
    def test_none_when_infeasible(self):
        assert brute_force_assign([device(0, mem=1)],
                                  [submodel(0, size=5)], 1) is None

    def test_single_choice(self):
        plan = brute_force_assign([device(0)], [submodel(0)], 1)
        assert plan.mapping == {"m0": "d0"}


class TestGreedyOptimalityGap:
    def test_gap_on_random_instances(self):
        # Greedy should be within 50% of optimal on small random instances
        # (it is usually optimal on homogeneous fleets).
        import numpy as np

        rng = np.random.default_rng(0)
        gaps = []
        for trial in range(10):
            devices = [device(i, energy=float(rng.integers(50, 150)))
                       for i in range(3)]
            models = [submodel(i, flops=float(rng.integers(5, 40)))
                      for i in range(4)]
            try:
                g = greedy_assign(devices, models, num_samples=1).objective
                o = optimal_assign(devices, models, num_samples=1).objective
            except InfeasibleAssignment:
                continue
            gaps.append((o - g) / max(o, 1e-9))
        assert gaps, "all random instances infeasible?"
        assert max(gaps) < 0.5
