"""Data-model and plan-validation tests."""

import pytest

from repro.assignment.problem import (
    AssignmentPlan,
    DeviceSpec,
    InfeasibleAssignment,
    SubModelSpec,
    validate_plan,
)


def device(i, mem=100, energy=100.0):
    return DeviceSpec(device_id=f"d{i}", memory_bytes=mem, energy_flops=energy)


def submodel(i, size=10, flops=10.0):
    return SubModelSpec(model_id=f"m{i}", size_bytes=size, flops_per_sample=flops)


def plan_for(mapping, devices):
    return AssignmentPlan(mapping=mapping,
                          residual_memory={d.device_id: 0 for d in devices},
                          residual_energy={d.device_id: 1.0 for d in devices})


class TestSpecs:
    def test_device_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", memory_bytes=0, energy_flops=1.0)

    def test_device_rejects_nonpositive_energy(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", memory_bytes=1, energy_flops=0.0)

    def test_workload_flops(self):
        assert submodel(0, flops=5.0).workload_flops(4) == 20.0


class TestAssignmentPlan:
    def test_objective_is_min_residual(self):
        plan = AssignmentPlan(mapping={}, residual_memory={},
                              residual_energy={"a": 5.0, "b": 2.0})
        assert plan.objective == 2.0

    def test_device_of_and_models_on(self):
        plan = plan_for({"m0": "d0", "m1": "d0", "m2": "d1"},
                        [device(0), device(1)])
        assert plan.device_of("m1") == "d0"
        assert sorted(plan.models_on("d0")) == ["m0", "m1"]


class TestValidatePlan:
    def test_accepts_feasible(self):
        devices = [device(0), device(1)]
        models = [submodel(0), submodel(1)]
        plan = plan_for({"m0": "d0", "m1": "d1"}, devices)
        validate_plan(plan, devices, models, num_samples=1)

    def test_rejects_incomplete_mapping(self):
        devices = [device(0)]
        models = [submodel(0), submodel(1)]
        plan = plan_for({"m0": "d0"}, devices)
        with pytest.raises(InfeasibleAssignment):
            validate_plan(plan, devices, models, num_samples=1)

    def test_rejects_unknown_device(self):
        devices = [device(0)]
        models = [submodel(0)]
        plan = plan_for({"m0": "ghost"}, devices)
        with pytest.raises(InfeasibleAssignment):
            validate_plan(plan, devices, models, num_samples=1)

    def test_rejects_memory_overflow(self):
        devices = [device(0, mem=15)]
        models = [submodel(0, size=10), submodel(1, size=10)]
        plan = plan_for({"m0": "d0", "m1": "d0"}, devices)
        with pytest.raises(InfeasibleAssignment):
            validate_plan(plan, devices, models, num_samples=1)

    def test_rejects_energy_overflow(self):
        devices = [device(0, energy=15.0)]
        models = [submodel(0, flops=10.0)]
        plan = plan_for({"m0": "d0"}, devices)
        with pytest.raises(InfeasibleAssignment):
            validate_plan(plan, devices, models, num_samples=2)

    def test_rejects_fleet_budget_overflow(self):
        devices = [device(0)]
        models = [submodel(0, size=60)]
        plan = plan_for({"m0": "d0"}, devices)
        with pytest.raises(InfeasibleAssignment):
            validate_plan(plan, devices, models, num_samples=1,
                          memory_budget=50)

    def test_accepts_multiple_models_per_device(self):
        devices = [device(0, mem=100, energy=100.0)]
        models = [submodel(0, size=10, flops=10.0),
                  submodel(1, size=10, flops=10.0)]
        plan = plan_for({"m0": "d0", "m1": "d0"}, devices)
        validate_plan(plan, devices, models, num_samples=1)
