"""Algorithm 3 greedy-assignment tests."""

import pytest

from repro.assignment.greedy import greedy_assign, try_greedy_assign
from repro.assignment.problem import (
    DeviceSpec,
    InfeasibleAssignment,
    SubModelSpec,
    validate_plan,
)


def device(i, mem=100, energy=100.0):
    return DeviceSpec(device_id=f"d{i}", memory_bytes=mem, energy_flops=energy)


def submodel(i, size=10, flops=10.0):
    return SubModelSpec(model_id=f"m{i}", size_bytes=size, flops_per_sample=flops)


class TestGreedyAssign:
    def test_one_model_per_device_when_resources_match(self):
        devices = [device(0), device(1)]
        models = [submodel(0, flops=60.0), submodel(1, flops=60.0)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert set(plan.mapping.values()) == {"d0", "d1"}
        validate_plan(plan, devices, models, num_samples=1)

    def test_heaviest_model_goes_to_strongest_device(self):
        devices = [device(0, energy=50.0), device(1, energy=200.0)]
        models = [submodel(0, flops=90.0), submodel(1, flops=10.0)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert plan.mapping["m0"] == "d1"

    def test_multiple_models_share_a_device(self):
        devices = [device(0, mem=100, energy=100.0)]
        models = [submodel(i, size=20, flops=20.0) for i in range(4)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert all(dev == "d0" for dev in plan.mapping.values())

    def test_memory_exhausted_device_is_skipped(self):
        devices = [device(0, mem=5, energy=1000.0), device(1, mem=100)]
        models = [submodel(0, size=50)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert plan.mapping["m0"] == "d1"

    def test_workload_scales_with_num_samples(self):
        devices = [device(0, energy=100.0)]
        models = [submodel(0, flops=30.0)]
        # 3 samples -> 90 <= 100 fits; 4 samples -> 120 does not.
        assert greedy_assign(devices, models, num_samples=3)
        with pytest.raises(InfeasibleAssignment):
            greedy_assign(devices, models, num_samples=4)

    def test_residual_bookkeeping(self):
        devices = [device(0, mem=100, energy=100.0)]
        models = [submodel(0, size=30, flops=40.0)]
        plan = greedy_assign(devices, models, num_samples=2)
        assert plan.residual_memory["d0"] == 70
        assert plan.residual_energy["d0"] == pytest.approx(20.0)

    def test_objective_is_min_residual_energy(self):
        devices = [device(0, energy=100.0), device(1, energy=80.0)]
        models = [submodel(0, flops=50.0)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert plan.objective == pytest.approx(50.0)

    def test_no_devices_raises(self):
        with pytest.raises(InfeasibleAssignment):
            greedy_assign([], [submodel(0)], num_samples=1)

    def test_infeasible_raises_with_context(self):
        devices = [device(0, mem=5)]
        with pytest.raises(InfeasibleAssignment, match="m0"):
            greedy_assign(devices, [submodel(0, size=50)], num_samples=1)

    def test_current_model_retries_after_device_removal(self):
        # Strongest-energy device lacks memory; greedy must fall through
        # to the next device for the *same* model, not skip the model.
        devices = [device(0, mem=5, energy=1000.0),
                   device(1, mem=100, energy=500.0)]
        models = [submodel(0, size=50, flops=10.0),
                  submodel(1, size=10, flops=5.0)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert plan.mapping["m0"] == "d1"
        assert plan.mapping["m1"] == "d1"

    def test_empty_model_list(self):
        plan = greedy_assign([device(0)], [], num_samples=1)
        assert plan.mapping == {}

    def test_rejected_device_still_hosts_later_smaller_model(self):
        # Regression: d0 lacks memory for the big m0 but is the only device
        # with energy left for the small m1.  The old code dropped d0 from
        # the fleet while placing m0, then reported this clearly feasible
        # instance as InfeasibleAssignment.
        devices = [device(0, mem=10, energy=1000.0),
                   device(1, mem=100, energy=50.0)]
        models = [submodel(0, size=50, flops=40.0),
                  submodel(1, size=10, flops=30.0)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert plan.mapping == {"m0": "d1", "m1": "d0"}
        validate_plan(plan, devices, models, num_samples=1)

    def test_per_model_skip_keeps_device_for_every_later_model(self):
        # One memory-tight device must absorb all the small tail models
        # after being rejected by the head model.
        devices = [device(0, mem=8, energy=1000.0),
                   device(1, mem=60, energy=100.0)]
        models = [submodel(0, size=60, flops=90.0)] + [
            submodel(i, size=2, flops=5.0) for i in range(1, 5)]
        plan = greedy_assign(devices, models, num_samples=1)
        assert plan.mapping["m0"] == "d1"
        assert all(plan.mapping[f"m{i}"] == "d0" for i in range(1, 5))
        validate_plan(plan, devices, models, num_samples=1)


class TestTryGreedyAssign:
    def test_returns_plan_when_feasible(self):
        assert try_greedy_assign([device(0)], [submodel(0)], 1) is not None

    def test_returns_none_when_infeasible(self):
        assert try_greedy_assign([device(0, mem=1)], [submodel(0, size=50)],
                                 1) is None
