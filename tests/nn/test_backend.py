"""Backend layer: registry/selection, workspaces, fused-kernel correctness."""

import subprocess
import sys

import numpy as np
import pytest

from repro import nn
from repro.nn.backend import (
    ArrayBackend,
    NumpyBackend,
    Workspace,
    available_backends,
    get_backend,
    register_backend,
    scratch,
    set_backend,
    use_backend,
)


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
def test_numpy_backend_is_default():
    assert "numpy" in available_backends()
    assert isinstance(get_backend(), NumpyBackend)


def test_set_backend_rejects_unknown_name():
    with pytest.raises(ValueError, match="registered backends"):
        set_backend("no-such-backend")


def test_bad_env_var_falls_back_to_numpy_with_warning():
    """A typo in REPRO_BACKEND must degrade, not crash the import."""
    code = ("import warnings; warnings.simplefilter('error'); "
            "import sys; "
            "\ntry:\n    import repro.nn\nexcept RuntimeWarning as w:\n"
            "    print('warned:', 'REPRO_BACKEND' in str(w))\n"
            "    sys.exit(0)\nprint('no warning')")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "REPRO_BACKEND": "no-such", "PATH": "/usr/bin:/bin"},
        cwd=__file__.rsplit("/tests/", 1)[0],
    )
    assert out.stdout.strip() == "warned: True"
    code = "import repro.nn as nn; print(nn.get_backend().name)"
    out = subprocess.run(
        [sys.executable, "-W", "ignore::RuntimeWarning", "-c", code],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "REPRO_BACKEND": "no-such", "PATH": "/usr/bin:/bin"},
        cwd=__file__.rsplit("/tests/", 1)[0],
    )
    assert out.stdout.strip() == "numpy"


def test_use_backend_scoped_override():
    class Tagged(NumpyBackend):
        name = "tagged"

    default = get_backend()
    with use_backend(Tagged()) as active:
        assert get_backend() is active
        assert get_backend().name == "tagged"
    assert get_backend() is default


def test_use_backend_restores_on_exception():
    default = get_backend()
    with pytest.raises(RuntimeError):
        with use_backend(NumpyBackend()):
            raise RuntimeError("boom")
    assert get_backend() is default


def test_register_backend_and_set_by_name():
    class Custom(NumpyBackend):
        name = "custom-test"

    register_backend("custom-test", Custom)
    assert "custom-test" in available_backends()
    previous = get_backend()
    try:
        active = set_backend("custom-test")
        assert isinstance(active, Custom)
        assert get_backend() is active
    finally:
        set_backend(previous)


def test_env_var_selects_initial_backend():
    code = ("import repro.nn as nn; "
            "print(nn.get_backend().name)")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "REPRO_BACKEND": "numpy", "PATH": "/usr/bin:/bin"},
        cwd=__file__.rsplit("/tests/", 1)[0],
    )
    assert out.stdout.strip() == "numpy"


def test_ops_route_through_active_backend():
    """A custom backend's primitives are what nn ops actually execute."""
    class Counting(NumpyBackend):
        name = "counting"

        def __init__(self):
            self.linear_calls = 0

        def linear(self, x, weight, bias=None, out=None):
            self.linear_calls += 1
            return super().linear(x, weight, bias, out)

    counting = Counting()
    layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
    x = nn.Tensor(np.random.default_rng(1).normal(size=(2, 4)).astype(np.float32))
    with use_backend(counting):
        with nn.no_grad():
            layer(x)
    assert counting.linear_calls == 1


# ----------------------------------------------------------------------
# Workspace
# ----------------------------------------------------------------------
def test_workspace_reuses_storage_for_same_tag():
    ws = Workspace()
    a = ws.buffer("x", (3, 4), np.float32)
    b = ws.buffer("x", (3, 4), np.float32)
    assert np.shares_memory(a, b)
    assert len(ws) == 1


def test_workspace_grow_and_slice_bounds_memory_across_shapes():
    """Different shapes under one tag share one flat allocation (the ragged
    final predict() batch must not double a model's scratch footprint)."""
    ws = Workspace()
    big = ws.buffer("x", (8, 4), np.float32)
    small = ws.buffer("x", (3, 4), np.float32)
    assert np.shares_memory(big, small)
    assert len(ws) == 1
    assert ws.nbytes() == 8 * 4 * 4          # max request, not the sum
    assert small.flags["C_CONTIGUOUS"]


def test_workspace_distinguishes_tag_and_dtype():
    ws = Workspace()
    base = ws.buffer("x", (3, 4), np.float32)
    assert not np.shares_memory(ws.buffer("y", (3, 4), np.float32), base)
    assert not np.shares_memory(ws.buffer("x", (3, 4), np.float64), base)
    assert len(ws) == 3


def test_workspace_storage_is_thread_local():
    """Two threads asking for the same tag must never share scratch —
    concurrent inference on one model would otherwise corrupt outputs."""
    import threading

    ws = Workspace()
    mine = ws.buffer("x", (4,), np.float32)
    theirs = {}

    def worker():
        theirs["buf"] = ws.buffer("x", (4,), np.float32)
        theirs["buf"][:] = 7.0

    mine[:] = 1.0
    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert not np.shares_memory(mine, theirs["buf"])
    np.testing.assert_array_equal(mine, 1.0)


def test_workspace_clear_and_nbytes():
    ws = Workspace()
    ws.buffer("x", (8,), np.float32)
    assert ws.nbytes() == 32
    ws.clear()
    assert len(ws) == 0


def test_workspace_nbytes_totals_across_threads():
    """nbytes() is the whole server's scratch footprint; per_thread()
    breaks it down for telemetry."""
    import threading

    ws = Workspace()
    ws.buffer("x", (8,), np.float32)          # 32 bytes on this thread
    done = threading.Event()

    def worker():
        ws.buffer("x", (16,), np.float32)     # 64 bytes on the other thread
        done.set()

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert done.is_set()
    assert ws.nbytes() == 32 + 64
    breakdown = ws.per_thread()
    assert sorted(breakdown.values()) == [32, 64]
    assert threading.get_ident() in breakdown
    ws.clear()                                # current thread only
    assert ws.nbytes() == 64
    ws.clear_all()
    assert ws.nbytes() == 0 and ws.per_thread() == {}


def test_scratch_without_workspace_allocates_fresh():
    a = scratch(None, "x", (2, 2), np.float32)
    b = scratch(None, "x", (2, 2), np.float32)
    assert a is not b
    assert a.shape == (2, 2)


def test_module_workspace_is_lazy_and_clearable():
    layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
    assert "_workspace" not in layer.__dict__
    ws = layer.workspace
    assert layer.workspace is ws
    ws.buffer("t", (2,), np.float32)
    layer.clear_workspaces()
    assert len(ws) == 0


# ----------------------------------------------------------------------
# Fused kernels match their naive formulations
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def b() -> ArrayBackend:
    return NumpyBackend()


def test_gelu_kernel_matches_reference(b):
    x = np.random.default_rng(0).normal(size=(5, 7)).astype(np.float32)
    ref = 0.5 * x * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x ** 3)))
    np.testing.assert_allclose(b.gelu(x), ref, rtol=1e-6, atol=1e-7)


def test_softmax_kernel(b):
    x = np.random.default_rng(1).normal(size=(4, 9)).astype(np.float32)
    out = b.softmax(x, axis=-1)
    exp = np.exp(x - x.max(axis=-1, keepdims=True))
    np.testing.assert_allclose(out, exp / exp.sum(axis=-1, keepdims=True),
                               rtol=1e-6, atol=1e-7)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)


def test_log_softmax_kernel(b):
    x = np.random.default_rng(2).normal(size=(4, 9)).astype(np.float32)
    np.testing.assert_allclose(np.exp(b.log_softmax(x, axis=-1)),
                               b.softmax(x, axis=-1), rtol=1e-5, atol=1e-6)


def test_layer_norm_kernel(b):
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 5, 8)).astype(np.float32)
    w = rng.normal(size=8).astype(np.float32)
    bias = rng.normal(size=8).astype(np.float32)
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    ref = (x - mu) / np.sqrt(var + 1e-5) * w + bias
    np.testing.assert_allclose(b.layer_norm(x, w, bias, 1e-5), ref,
                               rtol=1e-5, atol=1e-6)


def test_linear_kernel_and_out_buffer(b):
    rng = np.random.default_rng(4)
    x = rng.normal(size=(2, 5, 8)).astype(np.float32)
    w = rng.normal(size=(3, 8)).astype(np.float32)
    bias = rng.normal(size=3).astype(np.float32)
    ref = x @ w.T + bias
    np.testing.assert_allclose(b.linear(x, w, bias), ref, rtol=1e-5, atol=1e-6)
    buf = np.empty((2, 5, 3), dtype=np.float32)
    out = b.linear(x, w, bias, out=buf)
    assert out.base is buf or out is buf
    np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)


def test_conv_im2col_roundtrip_shapes(b):
    x = np.random.default_rng(5).normal(size=(2, 3, 8, 8)).astype(np.float32)
    cols, oh, ow = b.conv_im2col(x, 3, 3, stride=1, pad=1)
    assert (oh, ow) == (8, 8)
    assert cols.shape == (2, 3 * 9, 64)
    buf = np.empty_like(cols)
    cols2, _, _ = b.conv_im2col(x, 3, 3, stride=1, pad=1, out=buf)
    np.testing.assert_array_equal(cols, cols2)
    assert cols2.base is buf or cols2 is buf


def test_one_hot_kernel(b):
    out = b.one_hot(np.array([0, 2, 1]), 3)
    np.testing.assert_array_equal(out, np.eye(3, dtype=np.float32)[[0, 2, 1]])
