"""Post-training int8 weight quantization (repro.nn.quantize)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.quantize import (
    QuantizedConv2d,
    QuantizedLinear,
    dequantize_array,
    is_quantized,
    quantize_array,
    quantize_module,
    quantize_state_dict,
)


# ----------------------------------------------------------------------
# Array-level scheme
# ----------------------------------------------------------------------
def test_quantize_array_per_channel_roundtrip():
    rng = np.random.default_rng(0)
    w = rng.normal(size=(6, 17)).astype(np.float32)
    q8, scale = quantize_array(w)
    assert q8.dtype == np.int8 and scale.dtype == np.float32
    assert q8.shape == w.shape and scale.shape == (6,)
    deq = dequantize_array(q8, scale)
    # Per-channel symmetric int8: error bounded by half a step per channel.
    err = np.abs(deq - w)
    bound = scale[:, None] * 0.5 + 1e-8
    assert (err <= bound).all()


def test_quantize_array_uses_full_int8_range():
    w = np.array([[1.0, -2.0, 0.5]], dtype=np.float32)
    q8, scale = quantize_array(w)
    assert q8.min() == -127 or q8.max() == 127
    np.testing.assert_allclose(scale, [2.0 / 127], rtol=1e-6)


def test_quantize_array_zero_channel_is_safe():
    w = np.zeros((2, 4), dtype=np.float32)
    w[1] = 3.0
    q8, scale = quantize_array(w)
    assert scale[0] == 1.0                    # no divide-by-zero poison
    np.testing.assert_array_equal(q8[0], 0)
    np.testing.assert_allclose(dequantize_array(q8, scale)[0], 0.0)


def test_quantize_array_rejects_vectors():
    with pytest.raises(ValueError):
        quantize_array(np.ones(4, dtype=np.float32))


# ----------------------------------------------------------------------
# Module surgery
# ----------------------------------------------------------------------
def _mlp(rng):
    return nn.Sequential(nn.Linear(8, 16, rng=rng), nn.GELU(),
                         nn.Linear(16, 4, rng=rng))


def test_quantize_module_replaces_linears_in_sequential():
    rng = np.random.default_rng(1)
    model = _mlp(rng)
    x = rng.normal(size=(3, 8)).astype(np.float32)
    with nn.inference_mode():
        ref = model(nn.Tensor(x)).data.copy()
    qmodel = quantize_module(model)
    assert is_quantized(qmodel)
    layers = list(qmodel.modules())
    assert any(isinstance(m, QuantizedLinear) for m in layers)
    assert not any(type(m) is nn.Linear for m in layers)
    with nn.inference_mode():
        out = qmodel(nn.Tensor(x)).data
    assert np.abs(out - ref).max() < 0.05     # int8 tolerance, not exact


def test_quantize_module_replaces_conv_and_matches():
    rng = np.random.default_rng(2)
    conv = nn.Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
    x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
    with nn.inference_mode():
        ref = conv(nn.Tensor(x)).data.copy()
    qconv = quantize_module(conv)
    assert isinstance(qconv, QuantizedConv2d)
    with nn.inference_mode():
        out = qconv(nn.Tensor(x)).data
    assert np.abs(out - ref).max() < 0.05


def test_quantized_forward_requires_no_grad():
    q = QuantizedLinear.from_linear(
        nn.Linear(4, 2, rng=np.random.default_rng(3)))
    x = nn.Tensor(np.ones((1, 4), dtype=np.float32))
    with pytest.raises(RuntimeError, match="grad"):
        q(x)
    with nn.no_grad():
        q(x)                                  # graph-free path works


def test_quantize_state_dict_matches_module_surgery():
    """state-dict-level quantization must load strict into a quantized
    module — that is how workers and warm boots rebuild int8 models."""
    rng = np.random.default_rng(4)
    model = _mlp(rng)
    qstate = quantize_state_dict(model.state_dict())
    rebuilt = quantize_module(_mlp(np.random.default_rng(99)))
    rebuilt.load_state_dict(qstate)           # strict: keys must align
    direct = quantize_module(model)
    x = rng.normal(size=(2, 8)).astype(np.float32)
    with nn.inference_mode():
        np.testing.assert_array_equal(rebuilt(nn.Tensor(x)).data,
                                      direct(nn.Tensor(x)).data)


def test_quantize_state_dict_shrinks_vit():
    from repro.models.vit import VisionTransformer, vit_tiny_config

    model = VisionTransformer(vit_tiny_config(),
                              rng=np.random.default_rng(5))
    state = model.state_dict()
    qstate = quantize_state_dict(state)
    fp32 = nn.state_dict_num_bytes(state)
    int8 = nn.state_dict_num_bytes(qstate)
    assert fp32 >= 2 * int8, (fp32, int8)     # the artifact-size gate


def test_quantized_vit_forward_is_close():
    from repro.models.vit import VisionTransformer, vit_tiny_config

    rng = np.random.default_rng(6)
    model = VisionTransformer(vit_tiny_config(), rng=rng)
    x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
    with nn.inference_mode():
        ref = model(nn.Tensor(x)).data.copy()
    qmodel = quantize_module(model)
    assert is_quantized(qmodel)
    with nn.inference_mode():
        out = qmodel(nn.Tensor(x)).data
    assert np.abs(out - ref).max() < 0.25, np.abs(out - ref).max()


def test_is_quantized_false_for_plain_modules():
    assert not is_quantized(_mlp(np.random.default_rng(7)))
