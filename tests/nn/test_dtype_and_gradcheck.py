"""Dtype-propagation regression tests and gradcheck-utility tests.

The dtype tests pin a fixed bug: op outputs used to be routed through the
public constructor, silently downcasting float64 graphs to float32 and
ruining numerical gradient checks.
"""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradient, numerical_gradient
from repro.nn.tensor import Tensor, concat


class TestDtypePropagation:
    def test_float64_survives_arithmetic(self):
        t = Tensor(np.zeros((2, 2)), dtype=np.float64)
        assert (t + 1.0).dtype == np.float64
        assert (t * 2.0).dtype == np.float64
        assert (t - t).dtype == np.float64

    def test_float64_survives_reductions(self):
        t = Tensor(np.ones((3, 4)), dtype=np.float64)
        assert t.sum(axis=0).dtype == np.float64
        assert t.mean(axis=-1).dtype == np.float64
        assert t.var(axis=-1).dtype == np.float64

    def test_float64_survives_matmul_and_shape_ops(self):
        a = Tensor(np.ones((2, 3)), dtype=np.float64)
        b = Tensor(np.ones((3, 4)), dtype=np.float64)
        assert (a @ b).dtype == np.float64
        assert a.reshape(6).dtype == np.float64
        assert a.transpose().dtype == np.float64

    def test_float64_survives_nn_ops(self):
        from repro.nn import ops

        t = Tensor(np.ones((2, 8)), dtype=np.float64)
        assert ops.softmax(t).dtype == np.float64
        assert ops.gelu(t).dtype == np.float64

    def test_float32_stays_float32_in_training_path(self):
        t = Tensor(np.ones((2, 2), dtype=np.float32))
        out = ((t * 2.0 + 1.0) / 3.0).mean()
        assert out.dtype == np.float32

    def test_concat_mixed_inputs(self):
        a = Tensor(np.ones(2), dtype=np.float64)
        b = Tensor(np.ones(2), dtype=np.float64)
        assert concat([a, b]).dtype == np.float64


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda a: float((a ** 2).sum()), x.copy())
        np.testing.assert_allclose(grad, 2 * x, rtol=1e-5)

    def test_linear(self):
        w = np.array([2.0, -1.0])
        grad = numerical_gradient(lambda a: float(a @ w), np.zeros(2))
        np.testing.assert_allclose(grad, w, rtol=1e-5)

    def test_does_not_mutate_input(self):
        x = np.array([1.0, 2.0])
        copy = x.copy()
        numerical_gradient(lambda a: float(a.sum()), x)
        np.testing.assert_array_equal(x, copy)


class TestCheckGradient:
    def test_passes_for_correct_gradient(self):
        ok, err = check_gradient(lambda t: (t ** 2).sum(),
                                 np.array([1.0, 2.0]))
        assert ok
        assert err < 1e-3

    def test_rejects_non_scalar_output(self):
        with pytest.raises(ValueError):
            check_gradient(lambda t: t * 2.0, np.array([1.0, 2.0]))

    def test_reports_error_magnitude(self):
        ok, err = check_gradient(lambda t: t.sum(), np.array([5.0]))
        assert ok
        assert err >= 0.0
