"""Checkpoint and byte-stream serialization tests."""

import numpy as np

from repro import nn
from repro.nn.serialization import (
    load_checkpoint,
    save_checkpoint,
    state_dict_from_bytes,
    state_dict_num_bytes,
    state_dict_to_bytes,
)


def test_checkpoint_roundtrip(tmp_path):
    model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 3))
    path = tmp_path / "ckpt.npz"
    save_checkpoint(model, path, config={"layers": [4, 8, 3]})
    state, config = load_checkpoint(path)
    assert config == {"layers": [4, 8, 3]}
    clone = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 3))
    clone.load_state_dict(state)
    x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32))
    np.testing.assert_allclose(model(x).data, clone(x).data)


def test_checkpoint_without_config(tmp_path):
    model = nn.Linear(2, 2)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(model, path)
    state, config = load_checkpoint(path)
    assert config is None
    assert set(state) == {"weight", "bias"}


def test_checkpoint_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "ckpt.npz"
    save_checkpoint(nn.Linear(2, 2), path)
    assert path.exists()


def test_state_dict_num_bytes():
    model = nn.Linear(4, 4)  # 16 weights + 4 biases, float32
    assert state_dict_num_bytes(model.state_dict()) == 20 * 4


def test_bytes_roundtrip():
    model = nn.Linear(3, 5)
    blob = state_dict_to_bytes(model.state_dict())
    assert isinstance(blob, bytes)
    restored = state_dict_from_bytes(blob)
    np.testing.assert_allclose(restored["weight"], model.weight.data)
    np.testing.assert_allclose(restored["bias"], model.bias.data)


def test_vit_checkpoint_roundtrip(tmp_path):
    from repro.models.vit import ViTConfig, VisionTransformer

    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3, depth=1,
                    embed_dim=16, num_heads=2)
    model = VisionTransformer(cfg, rng=np.random.default_rng(0))
    path = tmp_path / "vit.npz"
    save_checkpoint(model, path, config=cfg.to_dict())
    state, config_dict = load_checkpoint(path)
    clone = VisionTransformer(ViTConfig.from_dict(config_dict))
    clone.load_state_dict(state)
    x = nn.Tensor(np.random.default_rng(1).normal(size=(2, 3, 8, 8)).astype(np.float32))
    np.testing.assert_allclose(model(x).data, clone(x).data, rtol=1e-5)


class TestPathNormalization:
    """save/load must agree on the .npz suffix np.savez appends."""

    def test_suffixless_path_roundtrips(self, tmp_path):
        model = nn.Linear(2, 2)
        path = tmp_path / "ckpt"          # no .npz suffix
        written = save_checkpoint(model, path, config={"a": 1})
        assert written == tmp_path / "ckpt.npz" and written.exists()
        state, config = load_checkpoint(path)   # same suffix-less path
        assert config == {"a": 1}
        np.testing.assert_array_equal(state["weight"], model.weight.data)

    def test_dotted_name_gets_suffix(self, tmp_path):
        from repro.nn.serialization import checkpoint_path

        assert checkpoint_path(tmp_path / "v1.2") \
            == tmp_path / "v1.2.npz"
        assert checkpoint_path(tmp_path / "ckpt.npz") \
            == tmp_path / "ckpt.npz"

    def test_config_sentinel_collision_rejected(self, tmp_path):
        class Evil(nn.Module):
            def __init__(self):
                super().__init__()
                self.register_buffer("__config_json__",
                                     np.zeros(1, dtype=np.float32))

        try:
            evil = Evil()
        except Exception:
            # No register_buffer API: emulate via a crafted state_dict.
            class Fake(nn.Linear):
                def state_dict(self):
                    return {"__config_json__": np.zeros(1, dtype=np.float32)}
            evil = Fake(2, 2)
        import pytest

        with pytest.raises(ValueError, match="sentinel"):
            save_checkpoint(evil, tmp_path / "evil.npz", config={"x": 1})


class TestAllModelKindsRoundtrip:
    """Checkpoint round trip for every registered model kind."""

    def tiny(self, kind):
        from repro.serving.demo import _tiny_model

        return _tiny_model(kind, 10, 8, np.random.default_rng(0))

    def assert_roundtrip(self, kind, tmp_path):
        from repro.edge.runtime import MODEL_KINDS

        model = self.tiny(kind)
        config = model.config.to_dict()
        path = tmp_path / f"{kind}.npz"
        save_checkpoint(model, path, config=config)
        state, loaded_config = load_checkpoint(path)
        # The config blob survives modulo JSON normalization (tuple->list).
        import json

        assert loaded_config == json.loads(json.dumps(config))
        entry = MODEL_KINDS[kind]
        clone = entry.build(entry.config_from_dict(loaded_config))
        clone.load_state_dict(state)
        for key, value in model.state_dict().items():
            assert state[key].dtype == value.dtype, key   # dtype preserved
            np.testing.assert_array_equal(state[key], value)
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8)) \
            .astype(np.float32)
        from repro.core.inference import extract_features

        np.testing.assert_array_equal(extract_features(clone, x),
                                      extract_features(model, x))

    def test_vit(self, tmp_path):
        self.assert_roundtrip("vit", tmp_path)

    def test_vgg(self, tmp_path):
        self.assert_roundtrip("vgg", tmp_path)

    def test_snn(self, tmp_path):
        self.assert_roundtrip("snn", tmp_path)
