"""Checkpoint and byte-stream serialization tests."""

import numpy as np

from repro import nn
from repro.nn.serialization import (
    load_checkpoint,
    save_checkpoint,
    state_dict_from_bytes,
    state_dict_num_bytes,
    state_dict_to_bytes,
)


def test_checkpoint_roundtrip(tmp_path):
    model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 3))
    path = tmp_path / "ckpt.npz"
    save_checkpoint(model, path, config={"layers": [4, 8, 3]})
    state, config = load_checkpoint(path)
    assert config == {"layers": [4, 8, 3]}
    clone = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 3))
    clone.load_state_dict(state)
    x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32))
    np.testing.assert_allclose(model(x).data, clone(x).data)


def test_checkpoint_without_config(tmp_path):
    model = nn.Linear(2, 2)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(model, path)
    state, config = load_checkpoint(path)
    assert config is None
    assert set(state) == {"weight", "bias"}


def test_checkpoint_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "ckpt.npz"
    save_checkpoint(nn.Linear(2, 2), path)
    assert path.exists()


def test_state_dict_num_bytes():
    model = nn.Linear(4, 4)  # 16 weights + 4 biases, float32
    assert state_dict_num_bytes(model.state_dict()) == 20 * 4


def test_bytes_roundtrip():
    model = nn.Linear(3, 5)
    blob = state_dict_to_bytes(model.state_dict())
    assert isinstance(blob, bytes)
    restored = state_dict_from_bytes(blob)
    np.testing.assert_allclose(restored["weight"], model.weight.data)
    np.testing.assert_allclose(restored["bias"], model.bias.data)


def test_vit_checkpoint_roundtrip(tmp_path):
    from repro.models.vit import ViTConfig, VisionTransformer

    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3, depth=1,
                    embed_dim=16, num_heads=2)
    model = VisionTransformer(cfg, rng=np.random.default_rng(0))
    path = tmp_path / "vit.npz"
    save_checkpoint(model, path, config=cfg.to_dict())
    state, config_dict = load_checkpoint(path)
    clone = VisionTransformer(ViTConfig.from_dict(config_dict))
    clone.load_state_dict(state)
    x = nn.Tensor(np.random.default_rng(1).normal(size=(2, 3, 8, 8)).astype(np.float32))
    np.testing.assert_allclose(model(x).data, clone(x).data, rtol=1e-5)
