"""Regression: the packed-weight cache prunes dead entries under its
lock (the weakref callback fires on whichever thread drops the last
array reference — PR 8 moved it into ``_prune_packed``)."""

import gc

import numpy as np

from repro.nn.blocked import BlockedBackend


def test_dead_weight_is_pruned_from_the_pack_cache():
    backend = BlockedBackend(num_threads=1)
    weight = np.random.default_rng(0).normal(size=(64, 32)).astype(np.float32)
    key = id(weight)

    packed = backend._packed_transpose(weight)
    assert packed is not None
    assert key in backend._packed

    del weight, packed
    gc.collect()
    assert key not in backend._packed


def test_prune_is_safe_for_already_missing_keys():
    backend = BlockedBackend(num_threads=1)
    backend._prune_packed(12345)           # no entry: must not raise
    assert backend._packed == {}


def test_live_weight_survives_unrelated_prunes():
    backend = BlockedBackend(num_threads=1)
    weight = np.ones((16, 16), dtype=np.float32)
    backend._packed_transpose(weight)
    backend._prune_packed(id(weight) + 1)
    assert id(weight) in backend._packed
    np.testing.assert_array_equal(
        backend._packed_transpose(weight), weight.T)
