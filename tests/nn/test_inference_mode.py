"""Graph-free fast path: autograd equivalence and mode semantics.

The acceptance bar for the execution engine: for every model family the
``no_grad()``/``inference_mode()`` forward must be numerically
indistinguishable (rtol 1e-5) from the graph-building autograd forward,
and the mode context managers must restore global state even on
exceptions.
"""

import numpy as np
import pytest

from repro import nn
from repro.models.snn import ConvSNN, SNNConfig
from repro.models.vgg import VGG, vgg8_micro_config
from repro.models.vit import ViTConfig, VisionTransformer


def _vit():
    cfg = ViTConfig(image_size=16, patch_size=4, num_classes=10, depth=2,
                    embed_dim=32, num_heads=4)
    return (VisionTransformer(cfg, rng=np.random.default_rng(0)),
            (2, 3, 16, 16))


def _vgg():
    cfg = vgg8_micro_config(num_classes=10, image_size=16, width_scale=0.25)
    return VGG(cfg, rng=np.random.default_rng(0)), (2, 3, 16, 16)


def _snn():
    cfg = SNNConfig(image_size=16, num_classes=10, channels=(8, 16),
                    time_steps=2, classifier_hidden=32)
    return ConvSNN(cfg, rng=np.random.default_rng(0)), (2, 3, 16, 16)


MODELS = {"vit": _vit, "vgg": _vgg, "snn": _snn}


@pytest.mark.parametrize("family", sorted(MODELS))
def test_fast_path_matches_autograd_forward(family):
    model, shape = MODELS[family]()
    model.eval()
    x = np.random.default_rng(1).normal(size=shape).astype(np.float32)

    ref = model(nn.Tensor(x))                      # graph-building forward
    assert ref.requires_grad                        # i.e. a graph was built

    with nn.no_grad():
        fast = model(nn.Tensor(x))
    assert not fast.requires_grad and fast._backward is None
    np.testing.assert_allclose(fast.data, ref.data, rtol=1e-5, atol=1e-5)

    with nn.inference_mode():
        cached = model(nn.Tensor(x)).data.copy()
        cached2 = model(nn.Tensor(x)).data.copy()  # workspaces now warm
    np.testing.assert_allclose(cached, ref.data, rtol=1e-5, atol=1e-5)
    np.testing.assert_allclose(cached2, ref.data, rtol=1e-5, atol=1e-5)
    assert (cached.argmax(axis=-1) == ref.data.argmax(axis=-1)).all()


def test_inference_mode_outputs_alias_workspaces():
    """Documented invariant: under inference_mode repeated forwards reuse
    the same output storage; under plain no_grad they never do."""
    model, shape = _vit()
    model.eval()
    x = nn.Tensor(np.random.default_rng(2).normal(size=shape).astype(np.float32))
    with nn.inference_mode():
        first = model(x).data
        second = model(x).data
    assert np.shares_memory(first, second)          # head Linear's workspace
    with nn.no_grad():
        first = model(x).data
        second = model(x).data
    assert not np.shares_memory(first, second)


def test_no_grad_restores_on_exception():
    assert nn.is_grad_enabled()
    with pytest.raises(ValueError):
        with nn.no_grad():
            assert not nn.is_grad_enabled()
            raise ValueError("boom")
    assert nn.is_grad_enabled()


def test_inference_mode_restores_on_exception():
    assert nn.is_grad_enabled() and not nn.is_inference()
    with pytest.raises(ValueError):
        with nn.inference_mode():
            assert not nn.is_grad_enabled() and nn.is_inference()
            raise ValueError("boom")
    assert nn.is_grad_enabled() and not nn.is_inference()


def test_nested_modes_restore_inner_state_on_exception():
    with nn.no_grad():
        with pytest.raises(RuntimeError):
            with nn.inference_mode():
                raise RuntimeError("boom")
        # Back inside no_grad: grad still off, inference off again.
        assert not nn.is_grad_enabled()
        assert not nn.is_inference()
    assert nn.is_grad_enabled()


def test_no_grad_suspends_workspace_reuse_inside_inference_mode():
    """no_grad() promises indefinitely-valid outputs, so entering it inside
    inference_mode() must switch workspace aliasing off until it exits."""
    with nn.inference_mode():
        with nn.no_grad():
            assert not nn.is_inference()            # reuse suspended
            assert not nn.is_grad_enabled()
        assert nn.is_inference()                    # restored on exit
    assert not nn.is_inference()

    model, shape = _vit()
    model.eval()
    x = nn.Tensor(np.random.default_rng(4).normal(size=shape).astype(np.float32))
    with nn.inference_mode():
        with nn.no_grad():
            first = model(x).data
        second = model(x).data
    assert not np.shares_memory(first, second)      # first stays valid


def test_tensor_inference_mode_alias():
    with nn.Tensor.inference_mode():
        assert nn.is_inference() and not nn.is_grad_enabled()
    assert not nn.is_inference()


def test_tensors_created_graph_free_never_require_grad():
    with nn.inference_mode():
        t = nn.Tensor([1.0, 2.0], requires_grad=True)
        assert not t.requires_grad
        out = t * 2.0 + 1.0
        assert not out.requires_grad and out._parents == ()


def test_backward_graph_unaffected_by_prior_inference():
    """Training still works after inference passes over the same model."""
    model, shape = _vit()
    x = np.random.default_rng(3).normal(size=shape).astype(np.float32)
    with nn.inference_mode():
        model(nn.Tensor(x))
    model.train()
    loss = nn.cross_entropy(model(nn.Tensor(x)), np.zeros(shape[0], dtype=np.int64))
    loss.backward()
    grads = [p.grad for p in model.parameters()]
    assert all(g is not None for g in grads)
    assert all(np.isfinite(g).all() for g in grads)


def test_mode_flags_are_thread_local():
    import threading

    seen = {}

    def probe():
        seen["grad"] = nn.is_grad_enabled()
        seen["inference"] = nn.is_inference()

    with nn.inference_mode():
        worker = threading.Thread(target=probe)
        worker.start()
        worker.join()
    assert seen == {"grad": True, "inference": False}
