"""Numerical gradient checks for every differentiable op.

Each test compares the analytic backward rule against central differences
in float64; failures here indicate a wrong gradient, the most dangerous
kind of bug in a from-scratch autograd.
"""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.gradcheck import check_gradient
from repro.nn.tensor import Tensor, concat, stack, where

RNG = np.random.default_rng(42)


def _assert_grad(fn, x, **kw):
    ok, err = check_gradient(fn, x, **kw)
    assert ok, f"max gradient error {err:.3e}"


class TestElementwiseGrads:
    def test_add(self):
        _assert_grad(lambda t: (t + 2.0).sum(), RNG.normal(size=(3, 4)))

    def test_mul_by_constant_tensor(self):
        c = Tensor(RNG.normal(size=(3, 4)), dtype=np.float64)
        _assert_grad(lambda t: (t * c).sum(), RNG.normal(size=(3, 4)))

    def test_div(self):
        c = Tensor(RNG.uniform(1.0, 2.0, size=(3, 4)), dtype=np.float64)
        _assert_grad(lambda t: (t / c).sum(), RNG.normal(size=(3, 4)))

    def test_div_denominator(self):
        c = Tensor(RNG.normal(size=(3, 4)), dtype=np.float64)
        _assert_grad(lambda t: (c / t).sum(), RNG.uniform(1.0, 2.0, size=(3, 4)))

    def test_pow(self):
        _assert_grad(lambda t: (t ** 3).sum(), RNG.uniform(0.5, 1.5, size=(4,)))

    def test_exp(self):
        _assert_grad(lambda t: t.exp().sum(), RNG.normal(size=(3, 3)))

    def test_log(self):
        _assert_grad(lambda t: t.log().sum(), RNG.uniform(0.5, 2.0, size=(3, 3)))

    def test_sqrt(self):
        _assert_grad(lambda t: t.sqrt().sum(), RNG.uniform(0.5, 2.0, size=(3,)))

    def test_tanh(self):
        _assert_grad(lambda t: t.tanh().sum(), RNG.normal(size=(3, 3)))

    def test_sigmoid(self):
        _assert_grad(lambda t: t.sigmoid().sum(), RNG.normal(size=(3, 3)))

    def test_relu_away_from_kink(self):
        x = RNG.normal(size=(4, 4))
        x[np.abs(x) < 0.1] = 0.5
        _assert_grad(lambda t: t.relu().sum(), x)

    def test_abs_away_from_zero(self):
        x = RNG.normal(size=(4,))
        x[np.abs(x) < 0.1] = 1.0
        _assert_grad(lambda t: t.abs().sum(), x)

    def test_clip_interior(self):
        _assert_grad(lambda t: t.clip(-10.0, 10.0).sum(), RNG.normal(size=(3,)))

    def test_gelu(self):
        _assert_grad(lambda t: ops.gelu(t).sum(), RNG.normal(size=(3, 4)))


class TestReductionGrads:
    def test_sum_all(self):
        _assert_grad(lambda t: t.sum(), RNG.normal(size=(2, 3)))

    def test_sum_axis(self):
        _assert_grad(lambda t: (t.sum(axis=0) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_mean(self):
        _assert_grad(lambda t: (t.mean(axis=1) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_var(self):
        _assert_grad(lambda t: t.var(axis=-1).sum(), RNG.normal(size=(2, 5)))

    def test_max_unique(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        _assert_grad(lambda t: t.max(axis=1).sum(), x)

    def test_weighted_sum(self):
        w = Tensor(RNG.normal(size=(2, 3)), dtype=np.float64)
        _assert_grad(lambda t: (t * w).sum(), RNG.normal(size=(2, 3)))


class TestShapeGrads:
    def test_reshape(self):
        _assert_grad(lambda t: (t.reshape(6) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_transpose(self):
        _assert_grad(lambda t: (t.transpose(1, 0) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_getitem(self):
        _assert_grad(lambda t: (t[1:, :2] ** 2).sum(), RNG.normal(size=(3, 3)))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        _assert_grad(lambda t: (t[idx] ** 2).sum(), RNG.normal(size=(4, 2)))

    def test_pad(self):
        _assert_grad(lambda t: (t.pad(((1, 1), (1, 1))) ** 2).sum(),
                     RNG.normal(size=(2, 2)))

    def test_concat(self):
        other = Tensor(RNG.normal(size=(2, 3)), dtype=np.float64)
        _assert_grad(lambda t: (concat([t, other], axis=0) ** 2).sum(),
                     RNG.normal(size=(2, 3)))

    def test_stack(self):
        other = Tensor(RNG.normal(size=(3,)), dtype=np.float64)
        _assert_grad(lambda t: (stack([t, other]) ** 2).sum(),
                     RNG.normal(size=(3,)))

    def test_where(self):
        cond = np.array([[True, False, True]])
        other = Tensor(RNG.normal(size=(1, 3)), dtype=np.float64)
        _assert_grad(lambda t: (where(cond, t, other) ** 2).sum(),
                     RNG.normal(size=(1, 3)))


class TestMatmulGrads:
    def test_matmul_2d_left(self):
        b = Tensor(RNG.normal(size=(3, 4)), dtype=np.float64)
        _assert_grad(lambda t: (t @ b).sum(), RNG.normal(size=(2, 3)))

    def test_matmul_2d_right(self):
        a = Tensor(RNG.normal(size=(2, 3)), dtype=np.float64)
        _assert_grad(lambda t: (a @ t).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_batched(self):
        b = Tensor(RNG.normal(size=(5, 3, 4)), dtype=np.float64)
        _assert_grad(lambda t: (t @ b).sum(), RNG.normal(size=(5, 2, 3)))

    def test_matmul_broadcast_batch(self):
        b = Tensor(RNG.normal(size=(3, 4)), dtype=np.float64)
        _assert_grad(lambda t: (t @ b).sum(), RNG.normal(size=(5, 2, 3)))

    def test_matmul_vector_right(self):
        v = Tensor(RNG.normal(size=(3,)), dtype=np.float64)
        _assert_grad(lambda t: (t @ v).sum(), RNG.normal(size=(2, 3)))

    def test_matmul_vector_left(self):
        m = Tensor(RNG.normal(size=(3, 4)), dtype=np.float64)
        _assert_grad(lambda t: (t @ m).sum(), RNG.normal(size=(3,)))


class TestNNOpsGrads:
    def test_softmax(self):
        w = Tensor(RNG.normal(size=(2, 5)), dtype=np.float64)
        _assert_grad(lambda t: (ops.softmax(t) * w).sum(), RNG.normal(size=(2, 5)))

    def test_log_softmax(self):
        w = Tensor(RNG.normal(size=(2, 5)), dtype=np.float64)
        _assert_grad(lambda t: (ops.log_softmax(t) * w).sum(),
                     RNG.normal(size=(2, 5)))

    def test_layer_norm_input(self):
        weight = Tensor(RNG.uniform(0.5, 1.5, size=6), dtype=np.float64)
        bias = Tensor(RNG.normal(size=6), dtype=np.float64)
        _assert_grad(lambda t: (ops.layer_norm(t, weight, bias) ** 2).sum(),
                     RNG.normal(size=(2, 3, 6)), rtol=2e-2)

    def test_layer_norm_weight(self):
        x = Tensor(RNG.normal(size=(2, 6)), dtype=np.float64)
        bias = Tensor(np.zeros(6), dtype=np.float64)
        _assert_grad(lambda t: (ops.layer_norm(x, t, bias) ** 2).sum(),
                     RNG.uniform(0.5, 1.5, size=6))

    def test_layer_norm_bias(self):
        x = Tensor(RNG.normal(size=(2, 6)), dtype=np.float64)
        weight = Tensor(np.ones(6), dtype=np.float64)
        _assert_grad(lambda t: (ops.layer_norm(x, weight, t) ** 2).sum(),
                     RNG.normal(size=6))

    def test_conv2d_input(self):
        w = Tensor(RNG.normal(size=(2, 3, 3, 3)), dtype=np.float64)
        b = Tensor(RNG.normal(size=2), dtype=np.float64)
        _assert_grad(lambda t: (ops.conv2d(t, w, b, stride=1, padding=1) ** 2).sum(),
                     RNG.normal(size=(2, 3, 5, 5)))

    def test_conv2d_weight(self):
        x = Tensor(RNG.normal(size=(2, 3, 5, 5)), dtype=np.float64)
        b = Tensor(np.zeros(2), dtype=np.float64)
        _assert_grad(lambda t: (ops.conv2d(x, t, b) ** 2).sum(),
                     RNG.normal(size=(2, 3, 3, 3)))

    def test_conv2d_bias(self):
        x = Tensor(RNG.normal(size=(1, 2, 4, 4)), dtype=np.float64)
        w = Tensor(RNG.normal(size=(3, 2, 3, 3)), dtype=np.float64)
        _assert_grad(lambda t: (ops.conv2d(x, w, t) ** 2).sum(),
                     RNG.normal(size=3))

    def test_conv2d_strided(self):
        w = Tensor(RNG.normal(size=(2, 1, 2, 2)), dtype=np.float64)
        _assert_grad(lambda t: (ops.conv2d(t, w, None, stride=2) ** 2).sum(),
                     RNG.normal(size=(1, 1, 6, 6)))

    def test_max_pool(self):
        x = RNG.normal(size=(1, 2, 4, 4))
        x += np.arange(x.size).reshape(x.shape) * 0.01  # break ties
        _assert_grad(lambda t: (ops.max_pool2d(t, 2) ** 2).sum(), x)

    def test_avg_pool(self):
        _assert_grad(lambda t: (ops.avg_pool2d(t, 2) ** 2).sum(),
                     RNG.normal(size=(1, 2, 4, 4)))

    def test_linear(self):
        w = Tensor(RNG.normal(size=(4, 3)), dtype=np.float64)
        b = Tensor(RNG.normal(size=4), dtype=np.float64)
        _assert_grad(lambda t: (ops.linear(t, w, b) ** 2).sum(),
                     RNG.normal(size=(2, 3)))


class TestBatchNormGrad:
    def test_batch_norm_train_input(self):
        weight = Tensor(RNG.uniform(0.5, 1.5, size=2), dtype=np.float64)
        bias = Tensor(RNG.normal(size=2), dtype=np.float64)

        def fn(t):
            rm = np.zeros(2)
            rv = np.ones(2)
            return (ops.batch_norm_2d(t, weight, bias, rm, rv,
                                      training=True) ** 2).sum()

        _assert_grad(fn, RNG.normal(size=(3, 2, 4, 4)), rtol=3e-2, atol=1e-3)

    def test_batch_norm_eval_input(self):
        weight = Tensor(np.ones(2), dtype=np.float64)
        bias = Tensor(np.zeros(2), dtype=np.float64)
        rm = RNG.normal(size=2)
        rv = RNG.uniform(0.5, 1.5, size=2)

        def fn(t):
            return (ops.batch_norm_2d(t, weight, bias, rm.copy(), rv.copy(),
                                      training=False) ** 2).sum()

        _assert_grad(fn, RNG.normal(size=(2, 2, 3, 3)))


class TestSpikeSurrogate:
    def test_spike_forward_is_step(self):
        from repro.models.snn import spike_fn

        x = Tensor(np.array([0.5, 1.5], dtype=np.float32), requires_grad=True)
        out = spike_fn(x, threshold=1.0)
        np.testing.assert_allclose(out.data, [0.0, 1.0])

    def test_spike_surrogate_gradient_flows(self):
        from repro.models.snn import spike_fn

        x = Tensor(np.array([0.9, 1.1], dtype=np.float32), requires_grad=True)
        spike_fn(x, threshold=1.0).sum().backward()
        assert (x.grad > 0).all()  # fast-sigmoid surrogate is positive
