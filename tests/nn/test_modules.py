"""Tests for the module system: registration, traversal, state dicts, layers."""

import numpy as np
import pytest

from repro import nn


class TestModuleRegistration:
    def test_parameters_registered_on_assignment(self):
        layer = nn.Linear(3, 4)
        names = {name for name, _ in layer.named_parameters()}
        assert names == {"weight", "bias"}

    def test_nested_module_names(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 2))
        names = {name for name, _ in model.named_parameters()}
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters(self):
        layer = nn.Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_linear_without_bias(self):
        layer = nn.Linear(3, 4, bias=False)
        assert layer.num_parameters() == 12

    def test_modules_traversal_includes_self(self):
        model = nn.Sequential(nn.Linear(2, 2))
        assert model in list(model.modules())

    def test_named_buffers(self):
        bn = nn.BatchNorm2d(3)
        buffer_names = {name for name, _ in bn.named_buffers()}
        assert buffer_names == {"running_mean", "running_var"}

    def test_module_list_indexing(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert isinstance(ml[1], nn.Linear)
        assert len(list(ml[0].parameters())) == 2

    def test_module_list_params_visible_from_parent(self):
        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.layers = nn.ModuleList([nn.Linear(2, 2)])

        names = {name for name, _ in Holder().named_parameters()}
        assert "layers.0.weight" in names


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert not model[1].training
        model.train()
        assert model[1].training

    def test_dropout_identity_in_eval(self):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = nn.Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_dropout_scales_in_train(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = nn.Tensor(np.ones((100, 100)))
        out = drop(x).data
        # Inverted dropout: surviving entries are scaled by 1/keep.
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.1

    def test_zero_grad_clears_all(self):
        model = nn.Linear(2, 2)
        out = model(nn.Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        src = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        dst = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        dst.load_state_dict(src.state_dict())
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 3)).astype(np.float32))
        np.testing.assert_allclose(src(x).data, dst(x).data)

    def test_state_dict_is_a_copy(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"][:] = 99.0
        assert not (layer.weight.data == 99.0).any()

    def test_missing_key_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_unexpected_key_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_non_strict_ignores_missing(self):
        layer = nn.Linear(2, 2)
        layer.load_state_dict({}, strict=False)  # no error

    def test_batchnorm_buffers_roundtrip(self):
        src = nn.BatchNorm2d(3)
        src.running_mean[:] = 7.0
        dst = nn.BatchNorm2d(3)
        dst.load_state_dict(src.state_dict())
        np.testing.assert_allclose(dst.running_mean, 7.0)


class TestLayerForward:
    def test_linear_shape(self):
        assert nn.Linear(5, 7)(nn.Tensor(np.zeros((3, 5)))).shape == (3, 7)

    def test_linear_3d_input(self):
        assert nn.Linear(5, 7)(nn.Tensor(np.zeros((2, 4, 5)))).shape == (2, 4, 7)

    def test_layernorm_normalizes(self):
        ln = nn.LayerNorm(8)
        x = nn.Tensor(np.random.default_rng(0).normal(2.0, 3.0, (4, 8)).astype(np.float32))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_conv2d_output_shape(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        assert conv(nn.Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_conv2d_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        conv = nn.Conv2d(1, 1, kernel_size=2, rng=rng)
        x = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = conv(nn.Tensor(x)).data
        w = conv.weight.data[0, 0]
        expected = np.array([[(x[0, 0, i:i + 2, j:j + 2] * w).sum()
                              for j in range(2)] for i in range(2)])
        np.testing.assert_allclose(out[0, 0], expected + conv.bias.data[0],
                                   rtol=1e-5)

    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = nn.MaxPool2d(2)(nn.Tensor(x)).data
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = nn.AvgPool2d(2)(nn.Tensor(x)).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_flatten(self):
        assert nn.Flatten()(nn.Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_identity(self):
        x = nn.Tensor(np.ones(3))
        assert nn.Identity()(x) is x

    def test_sequential_iteration_and_len(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert len(model) == 2
        assert isinstance(list(model)[1], nn.ReLU)

    def test_batchnorm_train_normalizes_batch(self):
        bn = nn.BatchNorm2d(2)
        x = nn.Tensor(np.random.default_rng(0).normal(3.0, 2.0, (8, 2, 4, 4)).astype(np.float32))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_batchnorm_updates_running_stats(self):
        bn = nn.BatchNorm2d(2)
        x = nn.Tensor(np.full((4, 2, 3, 3), 10.0, dtype=np.float32))
        bn(x)
        assert (bn.running_mean > 0).all()

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(1)
        bn.running_mean[:] = 1.0
        bn.running_var[:] = 4.0
        bn.eval()
        x = nn.Tensor(np.full((1, 1, 2, 2), 3.0, dtype=np.float32))
        np.testing.assert_allclose(bn(x).data, (3.0 - 1.0) / 2.0, rtol=1e-3)
