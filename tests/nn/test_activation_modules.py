"""Activation-module wrappers and remaining module coverage."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops


RNG = np.random.default_rng(3)


class TestActivationModules:
    def test_gelu_module_matches_functional(self):
        x = nn.Tensor(RNG.normal(size=(4, 4)).astype(np.float32))
        np.testing.assert_array_equal(nn.GELU()(x).data, ops.gelu(x).data)

    def test_relu_module_matches_method(self):
        x = nn.Tensor(RNG.normal(size=(4, 4)).astype(np.float32))
        np.testing.assert_array_equal(nn.ReLU()(x).data, x.relu().data)

    def test_tanh_module_matches_numpy(self):
        x = nn.Tensor(RNG.normal(size=(4,)).astype(np.float32))
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh(x.data),
                                   rtol=1e-6)

    def test_activations_have_no_parameters(self):
        for module in (nn.GELU(), nn.ReLU(), nn.Tanh(), nn.Identity()):
            assert module.num_parameters() == 0


class TestDropoutSemantics:
    def test_zero_probability_is_identity_even_in_train(self):
        drop = nn.Dropout(0.0)
        x = nn.Tensor(np.ones((8, 8)))
        assert drop(x) is x

    def test_gradient_flows_through_surviving_units(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = nn.Tensor(np.ones((16, 16), dtype=np.float32),
                      requires_grad=True)
        out = drop(x)
        out.sum().backward()
        # Gradient is exactly the dropout mask (0 or 1/keep).
        np.testing.assert_array_equal(x.grad != 0, out.data != 0)

    def test_deterministic_with_seeded_rng(self):
        x = nn.Tensor(np.ones((8, 8)))
        a = nn.Dropout(0.5, rng=np.random.default_rng(42))(x).data
        b = nn.Dropout(0.5, rng=np.random.default_rng(42))(x).data
        np.testing.assert_array_equal(a, b)


class TestPoolModules:
    def test_avgpool_module(self):
        x = nn.Tensor(np.ones((1, 2, 4, 4), dtype=np.float32))
        out = nn.AvgPool2d(2)(x)
        assert out.shape == (1, 2, 2, 2)
        np.testing.assert_allclose(out.data, 1.0)

    def test_maxpool_custom_stride(self):
        x = nn.Tensor(np.arange(36, dtype=np.float32).reshape(1, 1, 6, 6))
        out = nn.MaxPool2d(2, stride=2)(x)
        assert out.shape == (1, 1, 3, 3)

    def test_adaptive_avg_pool_global(self):
        x = nn.Tensor(RNG.normal(size=(2, 3, 4, 4)).astype(np.float32))
        out = ops.adaptive_avg_pool2d(x, 1)
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out.data[..., 0, 0],
                                   x.data.mean(axis=(2, 3)), rtol=1e-5)

    def test_adaptive_avg_pool_non_global_unsupported(self):
        x = nn.Tensor(np.zeros((1, 1, 4, 4)))
        with pytest.raises(NotImplementedError):
            ops.adaptive_avg_pool2d(x, 2)


class TestInitializers:
    def test_trunc_normal_bounded(self):
        from repro.nn.init import trunc_normal

        out = trunc_normal(np.random.default_rng(0), (1000,), std=0.02)
        assert np.abs(out).max() <= 0.04 + 1e-6

    def test_xavier_uniform_bounded(self):
        from repro.nn.init import xavier_uniform

        out = xavier_uniform(np.random.default_rng(0), (64, 64))
        bound = np.sqrt(6.0 / 128)
        assert np.abs(out).max() <= bound + 1e-6

    def test_seed_all_resets_default(self):
        from repro.nn.init import default_rng, seed_all

        seed_all(123)
        a = default_rng().normal(size=3)
        seed_all(123)
        b = default_rng().normal(size=3)
        np.testing.assert_array_equal(a, b)
