"""Loss-function tests: values, gradients, and the KL importance metric."""

import numpy as np
import pytest

from repro import nn
from repro.nn.losses import accuracy, cross_entropy, kl_divergence, mse
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-4)

    def test_confident_correct_is_near_zero(self):
        logits = np.full((2, 3), -20.0, dtype=np.float32)
        logits[:, 1] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 1]))
        assert loss.item() < 1e-3

    def test_confident_wrong_is_large(self):
        logits = np.full((1, 3), -20.0, dtype=np.float32)
        logits[:, 1] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([0]))
        assert loss.item() > 10

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]], dtype=np.float32),
                        requires_grad=True)
        cross_entropy(logits, np.array([2])).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probs.copy()
        expected[0, 2] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, rtol=1e-4)

    def test_label_smoothing_raises_floor(self):
        logits = np.full((1, 4), -30.0, dtype=np.float32)
        logits[:, 0] = 30.0
        plain = cross_entropy(Tensor(logits), np.array([0])).item()
        smoothed = cross_entropy(Tensor(logits), np.array([0]),
                                 label_smoothing=0.1).item()
        assert smoothed > plain

    def test_numerically_stable_with_large_logits(self):
        logits = Tensor(np.array([[1e4, -1e4]], dtype=np.float32))
        loss = cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())


class TestMSE:
    def test_zero_for_identical(self):
        pred = Tensor(np.ones((3, 2)))
        assert mse(pred, np.ones((3, 2))).item() == pytest.approx(0.0)

    def test_value(self):
        pred = Tensor(np.zeros((1, 2)))
        assert mse(pred, np.array([[2.0, 0.0]])).item() == pytest.approx(2.0)


class TestKLDivergence:
    def test_zero_for_identical_distributions(self):
        p = np.array([[0.2, 0.3, 0.5]])
        assert kl_divergence(p, p)[0] == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self):
        p = np.array([[0.9, 0.1]])
        q = np.array([[0.1, 0.9]])
        assert kl_divergence(p, q)[0] > 0

    def test_asymmetric(self):
        p = np.array([[0.9, 0.1]])
        q = np.array([[0.5, 0.5]])
        assert kl_divergence(p, q)[0] != pytest.approx(kl_divergence(q, p)[0])

    def test_known_value(self):
        p = np.array([[0.5, 0.5]])
        q = np.array([[0.25, 0.75]])
        expected = 0.5 * np.log(2) + 0.5 * np.log(0.5 / 0.75)
        assert kl_divergence(p, q)[0] == pytest.approx(expected, rel=1e-6)

    def test_renormalizes_inputs(self):
        p = np.array([[2.0, 2.0]])  # unnormalized uniform
        q = np.array([[0.5, 0.5]])
        assert kl_divergence(p, q)[0] == pytest.approx(0.0, abs=1e-9)

    def test_handles_zero_probabilities(self):
        p = np.array([[1.0, 0.0]])
        q = np.array([[0.5, 0.5]])
        assert np.isfinite(kl_divergence(p, q)[0])

    def test_batched_output_shape(self):
        p = np.random.default_rng(0).dirichlet(np.ones(5), size=7)
        q = np.random.default_rng(1).dirichlet(np.ones(5), size=7)
        assert kl_divergence(p, q).shape == (7,)


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]], dtype=np.float32))
        assert accuracy(logits, np.array([0])) == 1.0
