"""BlockedBackend kernels agree with the reference NumpyBackend."""

import threading

import numpy as np
import pytest

from repro import nn
from repro.nn.backend import NumpyBackend, available_backends
from repro.nn.blocked import BlockedBackend
from repro.nn.quantize import quantize_array


@pytest.fixture(scope="module")
def blocked() -> BlockedBackend:
    return BlockedBackend()


@pytest.fixture(scope="module")
def reference() -> NumpyBackend:
    return NumpyBackend()


def test_blocked_backend_is_registered():
    assert "blocked" in available_backends()
    assert isinstance(nn.set_backend("blocked"), BlockedBackend)
    nn.set_backend("numpy")


@pytest.mark.parametrize("shape", [(1, 7), (5, 64), (300, 48), (2, 9, 33)])
def test_linear_matches_reference(blocked, reference, shape):
    rng = np.random.default_rng(0)
    x = rng.normal(size=shape).astype(np.float32)
    w = rng.normal(size=(23, shape[-1])).astype(np.float32)
    b = rng.normal(size=23).astype(np.float32)
    np.testing.assert_allclose(blocked.linear(x, w, b),
                               reference.linear(x, w, b),
                               rtol=1e-5, atol=1e-5)


@pytest.mark.parametrize("activation", [None, "gelu", "relu", "sigmoid",
                                        "tanh"])
def test_linear_act_epilogues(blocked, reference, activation):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(600, 32)).astype(np.float32)  # multi-block rows
    w = rng.normal(size=(16, 32)).astype(np.float32)
    b = rng.normal(size=16).astype(np.float32)
    np.testing.assert_allclose(
        blocked.linear_act(x, w, b, activation=activation),
        reference.linear_act(x, w, b, activation=activation),
        rtol=1e-5, atol=1e-5)


def test_linear_honours_out_buffer(blocked):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(4, 8)).astype(np.float32)
    w = rng.normal(size=(3, 8)).astype(np.float32)
    buf = np.empty((4, 3), dtype=np.float32)
    out = blocked.linear(x, w, None, out=buf)
    assert np.shares_memory(out, buf)


def test_pack_cache_prunes_on_weight_death(blocked):
    w = np.random.default_rng(3).normal(size=(8, 8)).astype(np.float32)
    x = np.ones((2, 8), dtype=np.float32)
    blocked.linear(x, w)
    assert id(w) in blocked._packed
    del w
    assert len(blocked._packed) == 0 or all(
        ref() is not None for ref, _ in blocked._packed.values())


def test_large_weights_are_not_packed():
    small = BlockedBackend(pack_limit=64)      # 64-byte budget
    w = np.random.default_rng(4).normal(size=(16, 16)).astype(np.float32)
    assert small._packed_transpose(w) is None
    y = small.linear(np.ones((2, 16), dtype=np.float32), w)
    assert y.shape == (2, 16)                  # NT fallback still correct


@pytest.mark.parametrize("shape", [(4, 9), (8, 12, 17, 17), (1, 1)])
def test_softmax_matches_reference(blocked, reference, shape):
    x = (np.random.default_rng(5).normal(size=shape) * 5).astype(np.float32)
    got = blocked.softmax(x, axis=-1)
    want = reference.softmax(x, axis=-1)
    np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-6)
    np.testing.assert_allclose(got.sum(axis=-1), 1.0, rtol=1e-5)


def test_softmax_clip_keeps_extreme_logits_finite(blocked):
    x = np.array([[500.0, -500.0, 0.0]], dtype=np.float32)
    out = blocked.softmax(x, axis=-1)
    assert np.isfinite(out).all()
    assert out[0, 0] > 0.999999


def test_softmax_non_last_axis_falls_back(blocked, reference):
    x = np.random.default_rng(6).normal(size=(3, 4, 5)).astype(np.float32)
    np.testing.assert_allclose(blocked.softmax(x, axis=1),
                               reference.softmax(x, axis=1),
                               rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("shape", [(2, 5, 8), (1576, 768), (1, 3)])
def test_layer_norm_matches_reference(blocked, reference, shape):
    rng = np.random.default_rng(7)
    x = rng.normal(size=shape).astype(np.float32)
    w = rng.normal(size=shape[-1]).astype(np.float32)
    b = rng.normal(size=shape[-1]).astype(np.float32)
    np.testing.assert_allclose(blocked.layer_norm(x, w, b, 1e-5),
                               reference.layer_norm(x, w, b, 1e-5),
                               rtol=2e-4, atol=2e-5)


def test_matmul_handles_strided_attention_views(blocked, reference):
    rng = np.random.default_rng(8)
    q = rng.normal(size=(2, 4, 16, 8)).astype(np.float32)
    k = rng.normal(size=(2, 4, 16, 8)).astype(np.float32)
    kt = k.transpose(0, 1, 3, 2)               # strided view, NT case
    np.testing.assert_allclose(blocked.matmul(q, kt),
                               reference.matmul(q, kt),
                               rtol=1e-5, atol=1e-5)
    qs = q.transpose(0, 2, 1, 3)               # strided a operand
    ks = k.transpose(0, 2, 3, 1)               # strided, not an NT view
    np.testing.assert_allclose(blocked.matmul(qs, ks),
                               reference.matmul(qs, ks),
                               rtol=1e-5, atol=1e-5)


def test_einsum_conv_lowering_shortcut(blocked, reference):
    rng = np.random.default_rng(9)
    w = rng.normal(size=(8, 27)).astype(np.float32)
    cols = rng.normal(size=(2, 27, 36)).astype(np.float32)
    np.testing.assert_allclose(blocked.einsum("ok,nkp->nop", w, cols),
                               reference.einsum("ok,nkp->nop", w, cols),
                               rtol=1e-5, atol=1e-5)


@pytest.mark.parametrize("pack", [True, False])
def test_linear_q8_both_paths_match_reference(reference, pack):
    backend = BlockedBackend() if pack else BlockedBackend(pack_limit=64)
    rng = np.random.default_rng(10)
    w = rng.normal(size=(48, 32)).astype(np.float32)
    q8, scale = quantize_array(w)
    x = rng.normal(size=(5, 32)).astype(np.float32)
    b = rng.normal(size=48).astype(np.float32)
    got = backend.linear_q8(x, q8, scale, b, activation="gelu")
    want = reference.linear_q8(x, q8, scale, b, activation="gelu")
    np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)


def test_concurrent_inference_is_thread_safe():
    """Two threads forwarding the same model under the blocked backend
    must not corrupt each other via shared scratch or pack caches."""
    from repro.models.vit import VisionTransformer, vit_tiny_config

    model = VisionTransformer(vit_tiny_config(),
                              rng=np.random.default_rng(11))
    model.eval()
    x = np.random.default_rng(12).normal(size=(4, 3, 32, 32)) \
        .astype(np.float32)
    with nn.inference_mode():
        ref = model(nn.Tensor(x)).data.copy()

    results: dict[int, np.ndarray] = {}
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            # set_backend is process-wide, so every thread runs blocked.
            with nn.inference_mode():
                for _ in range(5):
                    out = model(nn.Tensor(x)).data
            results[index] = out.copy()
        except BaseException as exc:   # surfaced on the main thread
            errors.append(exc)

    previous = nn.get_backend()
    nn.set_backend("blocked")
    try:
        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        nn.set_backend(previous)
    assert not errors, errors
    for out in results.values():
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)
