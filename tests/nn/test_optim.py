"""Optimizer and schedule tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import Adam, DecayingLR, SGD, clip_grad_norm


def quadratic_param(value=5.0):
    return nn.Parameter(np.array([value], dtype=np.float32))


def step_quadratic(opt, param, steps):
    for _ in range(steps):
        loss = (param * param).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(param.data[0])


class TestSGD:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        final = step_quadratic(SGD([p], lr=0.1), p, 50)
        assert abs(final) < 1e-3

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = step_quadratic(SGD([p1], lr=0.01), p1, 20)
        momentum = step_quadratic(SGD([p2], lr=0.01, momentum=0.9), p2, 20)
        assert abs(momentum) < abs(plain)

    def test_weight_decay_shrinks_param(self):
        p = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # zero loss gradient; decay alone should shrink the weight
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()  # no backward called; should not crash
        assert p.data[0] == pytest.approx(5.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        final = step_quadratic(Adam([p], lr=0.5), p, 200)
        assert abs(final) < 5e-2

    def test_first_step_size_is_lr(self):
        # With bias correction, |first step| == lr regardless of grad scale.
        p = quadratic_param(100.0)
        opt = Adam([p], lr=0.1)
        loss = (p * p).sum()
        loss.backward()
        opt.step()
        assert p.data[0] == pytest.approx(100.0 - 0.1, abs=1e-4)

    def test_weight_decay(self):
        p = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01, weight_decay=10.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_trains_small_net_to_fit(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3)).astype(np.float32)
        y = (x.sum(axis=1) > 0).astype(np.int64)
        model = nn.Sequential(nn.Linear(3, 16), nn.ReLU(), nn.Linear(16, 2))
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(100):
            loss = nn.cross_entropy(model(nn.Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert nn.accuracy(model(nn.Tensor(x)), y) > 0.95


class TestSchedulesAndClipping:
    def test_decaying_lr(self):
        p = quadratic_param()
        opt = Adam([p], lr=1.0)
        sched = DecayingLR(opt, decay=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_decaying_lr_floor(self):
        opt = Adam([quadratic_param()], lr=1e-5)
        sched = DecayingLR(opt, decay=0.1, min_lr=1e-6)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(1e-6)

    def test_clip_grad_norm_scales(self):
        p = nn.Parameter(np.array([0.0, 0.0], dtype=np.float32))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)  # norm 5
        total = clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_clip_grad_norm_noop_below_threshold(self):
        p = nn.Parameter(np.array([0.3], dtype=np.float32))
        p.grad = np.array([0.3], dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        assert p.grad[0] == pytest.approx(0.3)


class TestSharedParameters:
    """A parameter passed twice must be stepped exactly once per step()."""

    def test_duplicates_are_dropped_preserving_order(self):
        a, b = quadratic_param(1.0), quadratic_param(2.0)
        opt = SGD([a, b, a, b, a], lr=0.1)
        assert [id(p) for p in opt.params] == [id(a), id(b)]

    def test_sgd_steps_shared_param_once(self):
        shared, solo = quadratic_param(5.0), quadratic_param(5.0)
        # Emulate concatenating sub-model and fusion param lists that
        # share a module: the shared param appears twice.
        opt_shared = SGD([shared, shared], lr=0.1)
        opt_solo = SGD([solo], lr=0.1)
        for opt, p in ((opt_shared, shared), (opt_solo, solo)):
            loss = (p * p).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_array_equal(shared.data, solo.data)

    def test_adam_moment_state_matches_dedup(self):
        shared, solo = quadratic_param(5.0), quadratic_param(5.0)
        opt_shared = Adam([shared, shared, shared], lr=1e-2)
        opt_solo = Adam([solo], lr=1e-2)
        assert len(opt_shared._m) == 1   # one moment buffer, not three
        for _ in range(5):
            for opt, p in ((opt_shared, shared), (opt_solo, solo)):
                loss = (p * p).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
        np.testing.assert_array_equal(shared.data, solo.data)

    def test_equal_valued_distinct_params_both_kept(self):
        a, b = quadratic_param(3.0), quadratic_param(3.0)
        opt = SGD([a, b], lr=0.1)
        assert len(opt.params) == 2      # identity, not value, dedup
