"""Unit tests for the autograd Tensor: forward semantics and graph behavior."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, as_tensor, concat, stack, where


class TestConstruction:
    def test_default_dtype_is_float32(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_float64_input_downcast(self):
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float32

    def test_explicit_dtype_kept(self):
        assert Tensor(np.zeros(3), dtype=np.float64).dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_rejects_tensor_input(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        assert as_tensor(2.0).item() == pytest.approx(2.0)


class TestArithmetic:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar_broadcast(self):
        out = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_radd(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).data, [2.0])

    def test_rtruediv(self):
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_neg_pow(self):
        np.testing.assert_allclose((-Tensor([2.0])).data, [-2.0])
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_matmul_batched(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 2, 3)).astype(np.float32))
        b = Tensor(np.random.default_rng(1).normal(size=(5, 3, 4)).astype(np.float32))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data, rtol=1e-5)

    def test_comparisons_return_numpy(self):
        out = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, [False, True])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum().item() == pytest.approx(6.0)
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(Tensor(x).mean(axis=1).data,
                                   x.mean(axis=1), rtol=1e-5)

    def test_var_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(Tensor(x).var(axis=-1).data,
                                   x.var(axis=-1), rtol=1e-4)

    def test_max(self):
        x = np.array([[1.0, 5.0], [2.0, 0.0]], dtype=np.float32)
        np.testing.assert_allclose(Tensor(x).max(axis=1).data, [5.0, 2.0])

    def test_reshape_roundtrip(self):
        t = Tensor(np.arange(6, dtype=np.float32))
        assert t.reshape(2, 3).reshape(-1).shape == (6,)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_transpose_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.swapaxes(0, 2).shape == (4, 3, 2)

    def test_T_on_matrix(self):
        t = Tensor(np.zeros((2, 5)))
        assert t.T.shape == (5, 2)

    def test_getitem_slice(self):
        t = Tensor(np.arange(10, dtype=np.float32))
        np.testing.assert_allclose(t[2:5].data, [2.0, 3.0, 4.0])

    def test_getitem_fancy(self):
        t = Tensor(np.arange(10, dtype=np.float32))
        np.testing.assert_allclose(t[np.array([1, 1, 3])].data, [1.0, 1.0, 3.0])

    def test_pad(self):
        t = Tensor(np.ones((2, 2)))
        out = t.pad(((1, 1), (0, 0)))
        assert out.shape == (4, 2)
        assert out.data[0, 0] == 0.0


class TestCombinators:
    def test_concat(self):
        out = concat([Tensor(np.ones((2, 2))), Tensor(np.zeros((3, 2)))], axis=0)
        assert out.shape == (5, 2)

    def test_stack(self):
        out = stack([Tensor(np.ones(3)), Tensor(np.zeros(3))], axis=0)
        assert out.shape == (2, 3)

    def test_where(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])


class TestAutogradGraph:
    def test_backward_accumulates_leaf_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_backward_twice_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).sum().backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        assert not x.detach().requires_grad

    def test_diamond_graph_gradient(self):
        # y = x*x + x*x should give dy/dx = 4x
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x * x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        h = x * 3.0
        (h + h).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_broadcast_add_gradient_shapes(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_grad_not_tracked_for_intermediates(self):
        x = Tensor([1.0], requires_grad=True)
        h = x * 2.0
        h.sum().backward()
        assert h.grad is None  # only leaves accumulate
