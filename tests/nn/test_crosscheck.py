"""Cross-checks of repro.nn ops against scipy/numpy reference
implementations — independent oracles for the from-scratch kernels."""

import numpy as np
import pytest
import scipy.signal
import scipy.special

from repro.nn import ops
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(7)


class TestConvAgainstScipy:
    @pytest.mark.parametrize("pad", [0, 1, 2])
    def test_conv2d_matches_scipy_correlate(self, pad):
        x = RNG.normal(size=(2, 3, 7, 7)).astype(np.float64)
        w = RNG.normal(size=(4, 3, 3, 3)).astype(np.float64)
        out = ops.conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64), None, stride=1,
                         padding=pad).data

        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        expected = np.zeros_like(out)
        for n in range(2):
            for o in range(4):
                acc = np.zeros((xp.shape[2] - 2, xp.shape[3] - 2))
                for c in range(3):
                    acc += scipy.signal.correlate2d(xp[n, c], w[o, c],
                                                    mode="valid")
                expected[n, o] = acc
        np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-10)

    def test_strided_conv_subsamples_scipy_result(self):
        x = RNG.normal(size=(1, 1, 8, 8)).astype(np.float64)
        w = RNG.normal(size=(1, 1, 2, 2)).astype(np.float64)
        ours = ops.conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64), None, stride=2).data
        dense = scipy.signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(ours[0, 0], dense[::2, ::2], rtol=1e-10)


class TestActivationsAgainstScipy:
    def test_softmax_matches_scipy(self):
        x = RNG.normal(size=(4, 9)).astype(np.float64)
        ours = ops.softmax(Tensor(x, dtype=np.float64), axis=-1).data
        np.testing.assert_allclose(ours, scipy.special.softmax(x, axis=-1),
                                   rtol=1e-10)

    def test_log_softmax_matches_scipy(self):
        x = RNG.normal(size=(4, 9)).astype(np.float64)
        ours = ops.log_softmax(Tensor(x, dtype=np.float64), axis=-1).data
        np.testing.assert_allclose(ours, scipy.special.log_softmax(x, axis=-1),
                                   rtol=1e-10)

    def test_sigmoid_matches_scipy_expit(self):
        x = RNG.normal(size=(50,)).astype(np.float64)
        ours = Tensor(x, dtype=np.float64).sigmoid().data
        np.testing.assert_allclose(ours, scipy.special.expit(x), rtol=1e-10)

    def test_gelu_tanh_close_to_exact_erf_gelu(self):
        # Our tanh approximation should track the exact erf GELU closely.
        x = np.linspace(-4, 4, 200)
        ours = ops.gelu(Tensor(x, dtype=np.float64)).data
        exact = 0.5 * x * (1.0 + scipy.special.erf(x / np.sqrt(2.0)))
        assert np.abs(ours - exact).max() < 5e-3


class TestKLAgainstScipy:
    def test_kl_matches_scipy_rel_entr(self):
        from repro.nn.losses import kl_divergence

        p = RNG.dirichlet(np.ones(6), size=5)
        q = RNG.dirichlet(np.ones(6), size=5)
        ours = kl_divergence(p, q)
        expected = scipy.special.rel_entr(p, q).sum(axis=-1)
        np.testing.assert_allclose(ours, expected, rtol=1e-8)


class TestLayerNormAgainstNumpy:
    def test_layer_norm_matches_reference(self):
        x = RNG.normal(size=(3, 5, 8)).astype(np.float64)
        weight = RNG.uniform(0.5, 1.5, size=8)
        bias = RNG.normal(size=8)
        ours = ops.layer_norm(Tensor(x, dtype=np.float64), Tensor(weight, dtype=np.float64),
                              Tensor(bias, dtype=np.float64), eps=1e-5).data
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        expected = (x - mu) / np.sqrt(var + 1e-5) * weight + bias
        np.testing.assert_allclose(ours, expected, rtol=1e-9)
