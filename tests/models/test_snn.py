"""ConvSNN baseline tests: LIF dynamics, rate coding, trainability."""

import numpy as np
import pytest

from repro import nn
from repro.models.snn import ConvSNN, LIFConvLayer, SNNConfig, csnn_tiny_config, spike_fn
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(0)


def tiny_snn(num_classes=4, image_size=16, channels=(4, 8)):
    cfg = SNNConfig(image_size=image_size, num_classes=num_classes,
                    channels=channels, time_steps=3, classifier_hidden=16)
    return ConvSNN(cfg, rng=RNG)


class TestSpikeFunction:
    def test_binary_output(self):
        x = Tensor(RNG.normal(size=(10,)).astype(np.float32))
        out = spike_fn(x).data
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_threshold_boundary(self):
        x = Tensor(np.array([0.99, 1.0, 1.01], dtype=np.float32))
        np.testing.assert_array_equal(spike_fn(x, threshold=1.0).data,
                                      [0.0, 1.0, 1.0])

    def test_surrogate_peaks_at_threshold(self):
        x = Tensor(np.array([0.0, 1.0, 2.0], dtype=np.float32),
                   requires_grad=True)
        spike_fn(x, threshold=1.0).sum().backward()
        assert x.grad[1] > x.grad[0]
        assert x.grad[1] > x.grad[2]


class TestLIFLayer:
    def test_membrane_accumulates_over_steps(self):
        layer = LIFConvLayer(1, 1, decay=1.0, threshold=100.0, rng=RNG)
        layer.conv.weight.data[:] = 1.0
        layer.conv.bias.data[:] = 0.0
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        layer(x)
        first = layer.state.membrane.data.copy()
        layer(x)
        second = layer.state.membrane.data
        assert (second > first).all()  # sub-threshold: charge accumulates

    def test_reset_by_subtraction(self):
        layer = LIFConvLayer(1, 1, decay=0.0, threshold=1.0, rng=RNG)
        layer.conv.weight.data[:] = 0.0
        layer.conv.bias.data[:] = 1.5  # drives every neuron over threshold
        x = Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32))
        spikes = layer(x)
        assert (spikes.data == 1.0).all()
        np.testing.assert_allclose(layer.state.membrane.data, 0.5, atol=1e-6)

    def test_reset_state(self):
        layer = LIFConvLayer(1, 2, rng=RNG)
        layer(Tensor(np.ones((1, 1, 4, 4), dtype=np.float32)))
        layer.reset_state()
        assert layer.state.membrane is None


class TestConvSNN:
    def test_logits_shape(self):
        model = tiny_snn()
        x = nn.Tensor(RNG.normal(size=(2, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (2, 4)

    def test_features_shape(self):
        model = tiny_snn()
        x = nn.Tensor(RNG.normal(size=(2, 3, 16, 16)).astype(np.float32))
        assert model.forward_features(x).shape == (2, model.feature_dim())

    def test_forward_is_deterministic_after_reset(self):
        model = tiny_snn()
        x = nn.Tensor(RNG.normal(size=(1, 3, 16, 16)).astype(np.float32))
        with nn.no_grad():
            a = model(x).data.copy()
            b = model(x).data.copy()
        np.testing.assert_allclose(a, b)

    def test_gradients_flow_through_time(self):
        model = tiny_snn()
        x = nn.Tensor(RNG.normal(size=(2, 3, 16, 16)).astype(np.float32))
        nn.cross_entropy(model(x), np.array([0, 1])).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_param_count_matches_analytic(self):
        from repro.profiling import snn_param_count

        cfg = csnn_tiny_config(num_classes=5, image_size=32)
        assert ConvSNN(cfg).num_parameters() == snn_param_count(cfg)

    def test_more_time_steps_changes_output(self):
        cfg1 = SNNConfig(image_size=16, num_classes=3, channels=(4,),
                         time_steps=1)
        cfg2 = SNNConfig(image_size=16, num_classes=3, channels=(4,),
                         time_steps=4)
        m1, m2 = ConvSNN(cfg1, rng=np.random.default_rng(3)), ConvSNN(
            cfg2, rng=np.random.default_rng(3))
        m2.load_state_dict(m1.state_dict())
        x = nn.Tensor(RNG.normal(size=(1, 3, 16, 16)).astype(np.float32))
        with nn.no_grad():
            assert not np.allclose(m1(x).data, m2(x).data)

    def test_config_dict_roundtrip(self):
        cfg = csnn_tiny_config()
        assert SNNConfig.from_dict(cfg.to_dict()) == cfg

    def test_too_deep_for_image_raises(self):
        with pytest.raises(ValueError):
            ConvSNN(SNNConfig(image_size=4, channels=(4, 4, 4)))
