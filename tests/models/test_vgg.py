"""VGG baseline model tests."""

import numpy as np
import pytest

from repro import nn
from repro.models.vgg import VGG, VGGConfig, vgg11_tiny_config, vgg16_config

RNG = np.random.default_rng(0)


def tiny_vgg(num_classes=5, image_size=32, width_scale=0.125):
    return VGG(vgg11_tiny_config(num_classes=num_classes,
                                 image_size=image_size,
                                 width_scale=width_scale), rng=RNG)


class TestConfig:
    def test_scaled_plan_rounds_channels(self):
        cfg = VGGConfig(plan="vgg11", width_scale=0.5)
        plan = cfg.scaled_plan()
        assert plan[0] == 32  # 64 * 0.5
        assert "M" in plan

    def test_scaled_plan_floor_of_one(self):
        cfg = VGGConfig(plan="vgg11", width_scale=0.001)
        assert min(e for e in cfg.scaled_plan() if e != "M") >= 1

    def test_dict_roundtrip(self):
        cfg = vgg16_config(num_classes=7)
        assert VGGConfig.from_dict(cfg.to_dict()) == cfg

    def test_too_small_image_raises(self):
        with pytest.raises(ValueError):
            VGG(VGGConfig(plan="vgg16", image_size=16))


class TestForward:
    def test_logits_shape(self):
        model = tiny_vgg()
        x = nn.Tensor(RNG.normal(size=(2, 3, 32, 32)).astype(np.float32))
        assert model(x).shape == (2, 5)

    def test_features_shape_matches_feature_dim(self):
        model = tiny_vgg()
        x = nn.Tensor(RNG.normal(size=(2, 3, 32, 32)).astype(np.float32))
        feats = model.forward_features(x)
        assert feats.shape == (2, model.feature_dim())

    def test_features_feed_final_layer(self):
        # forward() == final_linear(forward_features()) in eval mode
        model = tiny_vgg()
        model.eval()
        x = nn.Tensor(RNG.normal(size=(1, 3, 32, 32)).astype(np.float32))
        with nn.no_grad():
            feats = model.forward_features(x)
            final = list(model.classifier)[-1]
            np.testing.assert_allclose(model(x).data, final(feats).data,
                                       rtol=1e-4)

    def test_gradients_reach_all_parameters(self):
        model = tiny_vgg(image_size=32)
        x = nn.Tensor(RNG.normal(size=(2, 3, 32, 32)).astype(np.float32))
        nn.cross_entropy(model(x), np.array([0, 1])).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_param_count_matches_analytic(self):
        from repro.profiling import vgg_param_count

        cfg = vgg11_tiny_config(num_classes=5, image_size=32, width_scale=0.25)
        assert VGG(cfg).num_parameters() == vgg_param_count(cfg)

    def test_width_scale_shrinks_model(self):
        wide = VGG(vgg11_tiny_config(width_scale=0.5))
        narrow = VGG(vgg11_tiny_config(width_scale=0.25))
        assert narrow.num_parameters() < wide.num_parameters()

    def test_vgg16_plan_has_13_convs(self):
        cfg = vgg16_config(image_size=32, width_scale=0.0625)
        model = VGG(cfg)
        convs = [m for m in model.features if isinstance(m, nn.Conv2d)]
        assert len(convs) == 13
