"""Every registered backend must produce the same model outputs.

Golden check: for each model family, the forward pass under every
registered backend is compared against the NumpyBackend reference —
fp32 backends bit-close, quantized weights within the int8 tolerance.
A new backend that silently diverges on any architecture fails here
before it can corrupt a serving fleet.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.backend import available_backends, use_backend
from repro.models.snn import ConvSNN, SNNConfig
from repro.models.vgg import VGG, VGGConfig
from repro.models.vit import ViTConfig, VisionTransformer


def _build(kind: str):
    rng = np.random.default_rng(17)
    if kind == "vit":
        model = VisionTransformer(
            ViTConfig(image_size=16, patch_size=4, num_classes=10,
                      depth=2, embed_dim=32, num_heads=4), rng=rng)
        x = rng.normal(size=(3, 3, 16, 16)).astype(np.float32)
    elif kind == "vgg":
        model = VGG(VGGConfig(plan="vgg8", image_size=16, num_classes=10,
                              width_scale=0.125, classifier_hidden=32),
                    rng=rng)
        x = rng.normal(size=(3, 3, 16, 16)).astype(np.float32)
    else:
        model = ConvSNN(SNNConfig(image_size=16, num_classes=10,
                                  channels=(4, 8), time_steps=2,
                                  classifier_hidden=16), rng=rng)
        x = rng.normal(size=(3, 3, 16, 16)).astype(np.float32)
    model.eval()
    return model, x


def _forward(model, x):
    with nn.inference_mode():
        return model(nn.Tensor(x)).data.copy()


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("kind", ["vit", "vgg", "snn"])
def test_fp32_forward_matches_numpy_reference(kind, backend):
    model, x = _build(kind)
    with use_backend("numpy"):
        ref = _forward(model, x)
    with use_backend(backend):
        out = _forward(model, x)
    np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5,
                               err_msg=f"{kind} under {backend!r}")


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("kind", ["vit", "vgg", "snn"])
def test_int8_forward_within_quantization_tolerance(kind, backend):
    model, x = _build(kind)
    with use_backend("numpy"):
        ref = _forward(model, x)
    qmodel = nn.quantize_module(model)
    with use_backend(backend):
        out = _forward(qmodel, x)
    # int8 weights change the numbers; the error must stay quantization-
    # sized, and identical-scheme backends must agree with each other.
    assert np.abs(out - ref).max() < 0.5, (
        f"{kind} int8 under {backend!r}: {np.abs(out - ref).max()}")
    with use_backend("numpy"):
        ref_q = _forward(qmodel, x)
    np.testing.assert_allclose(out, ref_q, rtol=2e-3, atol=2e-3,
                               err_msg=f"{kind} int8 under {backend!r}")


@pytest.mark.parametrize("backend", available_backends())
def test_predicted_labels_are_backend_invariant(backend):
    """The end-to-end serving contract: argmax labels never depend on
    which fp32 backend computed them."""
    model, x = _build("vit")
    with use_backend("numpy"):
        ref = _forward(model, x).argmax(axis=-1)
    with use_backend(backend):
        labels = _forward(model, x).argmax(axis=-1)
    np.testing.assert_array_equal(labels, ref)
