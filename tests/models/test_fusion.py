"""Fusion MLP tests (Section IV-E)."""

import numpy as np
import pytest

from repro import nn
from repro.models.fusion import FusionConfig, FusionMLP, build_fusion_for

RNG = np.random.default_rng(0)


class TestFusionConfig:
    def test_hidden_dim_uses_shrink(self):
        cfg = FusionConfig(input_dim=100, num_classes=10, shrink=0.5)
        assert cfg.hidden_dim == 50

    def test_paper_default_shrink_is_half(self):
        assert FusionConfig(input_dim=64, num_classes=10).shrink == 0.5

    def test_hidden_floor(self):
        assert FusionConfig(input_dim=2, num_classes=2).hidden_dim >= 4

    def test_dict_roundtrip(self):
        cfg = FusionConfig(input_dim=10, num_classes=3, shrink=0.25)
        assert FusionConfig.from_dict(cfg.to_dict()) == cfg


class TestFusionMLP:
    def test_forward_shape(self):
        mlp = FusionMLP(FusionConfig(input_dim=24, num_classes=7), rng=RNG)
        assert mlp(nn.Tensor(np.zeros((3, 24), dtype=np.float32))).shape == (3, 7)

    def test_fuse_concatenates(self):
        mlp = FusionMLP(FusionConfig(input_dim=12, num_classes=4), rng=RNG)
        parts = [nn.Tensor(RNG.normal(size=(2, 4)).astype(np.float32))
                 for _ in range(3)]
        fused = mlp.fuse(parts)
        direct = mlp(nn.concat(parts, axis=-1))
        np.testing.assert_allclose(fused.data, direct.data)

    def test_build_fusion_for_sums_dims(self):
        mlp = build_fusion_for([8, 8, 16], num_classes=5)
        assert mlp.config.input_dim == 32
        assert mlp.config.num_classes == 5

    def test_tower_structure_two_layers(self):
        mlp = build_fusion_for([16], num_classes=3)
        param_names = {name for name, _ in mlp.named_parameters()}
        assert param_names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_trainable(self):
        mlp = build_fusion_for([8], num_classes=2, rng=RNG)
        x = RNG.normal(size=(32, 8)).astype(np.float32)
        y = (x.sum(axis=1) > 0).astype(np.int64)
        opt = nn.Adam(mlp.parameters(), lr=1e-2)
        for _ in range(80):
            loss = nn.cross_entropy(mlp(nn.Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert nn.accuracy(mlp(nn.Tensor(x)), y) > 0.9
