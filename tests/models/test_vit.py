"""Vision Transformer tests: configs, shapes, attention mechanics."""

import dataclasses

import numpy as np

from repro import nn
import pytest

from repro import nn
from repro.models.vit import (
    MultiHeadSelfAttention,
    STANDARD_CONFIGS,
    ViTConfig,
    VisionTransformer,
    build_vit,
    vit_base_config,
    vit_large_config,
    vit_small_config,
    vit_tiny_config,
)

RNG = np.random.default_rng(0)


def tiny_cfg(**kw):
    defaults = dict(image_size=8, patch_size=4, in_channels=3, num_classes=5,
                    depth=2, embed_dim=16, num_heads=2)
    defaults.update(kw)
    return ViTConfig(**defaults)


class TestViTConfig:
    def test_table1_hyperparameters(self):
        s, b, l = vit_small_config(), vit_base_config(), vit_large_config()
        assert (s.depth, s.embed_dim, s.num_heads) == (12, 384, 6)
        assert (b.depth, b.embed_dim, b.num_heads) == (12, 768, 12)
        assert (l.depth, l.embed_dim, l.num_heads) == (24, 1024, 16)

    def test_num_patches(self):
        assert vit_base_config().num_patches == 196
        assert tiny_cfg().num_patches == 4

    def test_head_dim(self):
        assert vit_base_config().head_dim == 64

    def test_attn_dim_defaults_to_embed_dim(self):
        assert vit_base_config().resolved_attn_dim == 768

    def test_mlp_hidden_defaults_to_4x(self):
        assert vit_base_config().resolved_mlp_hidden == 3072

    def test_pruned_config_decoupled_dims(self):
        cfg = tiny_cfg(attn_dim=8, mlp_hidden=24)
        assert cfg.resolved_attn_dim == 8
        assert cfg.head_dim == 4
        assert cfg.resolved_mlp_hidden == 24

    def test_invalid_patch_size_raises(self):
        with pytest.raises(ValueError):
            tiny_cfg(image_size=10, patch_size=4)

    def test_attn_dim_not_divisible_raises(self):
        with pytest.raises(ValueError):
            tiny_cfg(attn_dim=7, num_heads=2)

    def test_dict_roundtrip(self):
        cfg = tiny_cfg(attn_dim=8)
        assert ViTConfig.from_dict(cfg.to_dict()) == cfg


class TestForward:
    def test_logits_shape(self):
        model = VisionTransformer(tiny_cfg(), rng=RNG)
        x = nn.Tensor(RNG.normal(size=(3, 3, 8, 8)).astype(np.float32))
        assert model(x).shape == (3, 5)

    def test_features_shape(self):
        model = VisionTransformer(tiny_cfg(embed_dim=24, num_heads=3), rng=RNG)
        x = nn.Tensor(RNG.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert model.forward_features(x).shape == (2, 24)

    def test_feature_dim(self):
        model = VisionTransformer(tiny_cfg(embed_dim=24, num_heads=3), rng=RNG)
        assert model.feature_dim() == 24

    def test_single_channel_input(self):
        model = VisionTransformer(tiny_cfg(in_channels=1), rng=RNG)
        x = nn.Tensor(RNG.normal(size=(2, 1, 8, 8)).astype(np.float32))
        assert model(x).shape == (2, 5)

    def test_batch_independence(self):
        model = VisionTransformer(tiny_cfg(), rng=RNG)
        model.eval()
        x = RNG.normal(size=(4, 3, 8, 8)).astype(np.float32)
        with nn.no_grad():
            full = model(nn.Tensor(x)).data
            single = model(nn.Tensor(x[:1])).data
        np.testing.assert_allclose(full[:1], single, atol=1e-5)

    def test_gradients_reach_all_parameters(self):
        model = VisionTransformer(tiny_cfg(), rng=RNG)
        x = nn.Tensor(RNG.normal(size=(2, 3, 8, 8)).astype(np.float32))
        loss = nn.cross_entropy(model(x), np.array([0, 1]))
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no gradient for {missing}"

    def test_decoupled_attn_dim_forward(self):
        model = VisionTransformer(tiny_cfg(embed_dim=16, attn_dim=8,
                                           num_heads=2), rng=RNG)
        x = nn.Tensor(RNG.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert model(x).shape == (2, 5)

    def test_replace_head(self):
        model = VisionTransformer(tiny_cfg(), rng=RNG)
        model.replace_head(3)
        assert model.config.num_classes == 3
        x = nn.Tensor(RNG.normal(size=(1, 3, 8, 8)).astype(np.float32))
        assert model(x).shape == (1, 3)


class TestAttention:
    def test_attention_weights_are_distributions(self):
        attn = MultiHeadSelfAttention(embed_dim=16, num_heads=2, rng=RNG)
        x = nn.Tensor(RNG.normal(size=(2, 5, 16)).astype(np.float32))
        weights = attn.attention_weights(x)
        assert weights.shape == (2, 2, 5, 5)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-5)
        assert (weights >= 0).all()

    def test_output_shape_with_narrow_attn(self):
        attn = MultiHeadSelfAttention(embed_dim=16, num_heads=2, attn_dim=8,
                                      rng=RNG)
        x = nn.Tensor(RNG.normal(size=(1, 4, 16)).astype(np.float32))
        assert attn(x).shape == (1, 4, 16)

    def test_indivisible_attn_dim_raises(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(embed_dim=16, num_heads=3, attn_dim=16)

    def test_scale_uses_head_dim(self):
        attn = MultiHeadSelfAttention(embed_dim=16, num_heads=2, attn_dim=8)
        assert attn.scale == pytest.approx(1.0 / np.sqrt(4))

    def test_permutation_equivariance_without_pos(self):
        # Self-attention alone is permutation-equivariant across tokens.
        attn = MultiHeadSelfAttention(embed_dim=8, num_heads=2, rng=RNG)
        x = RNG.normal(size=(1, 4, 8)).astype(np.float32)
        perm = np.array([2, 0, 3, 1])
        with nn.no_grad():
            out = attn(nn.Tensor(x)).data
            out_perm = attn(nn.Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-5)


class TestBuilders:
    def test_build_by_name(self):
        model = build_vit("vit-tiny", num_classes=4, image_size=16)
        assert model.config.num_classes == 4

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_vit("vit-giant")

    def test_standard_configs_registered(self):
        assert set(STANDARD_CONFIGS) == {"vit-small", "vit-base", "vit-large",
                                         "vit-tiny"}

    def test_tiny_config_defaults(self):
        cfg = vit_tiny_config()
        assert cfg.embed_dim == 64
        assert cfg.image_size == 32

    def test_deterministic_given_rng(self):
        m1 = VisionTransformer(tiny_cfg(), rng=np.random.default_rng(7))
        m2 = VisionTransformer(tiny_cfg(), rng=np.random.default_rng(7))
        np.testing.assert_array_equal(m1.head.weight.data, m2.head.weight.data)


class TestParamCountsMatchAnalytic:
    @pytest.mark.parametrize("kw", [
        {},
        {"embed_dim": 24, "num_heads": 3},
        {"attn_dim": 8},
        {"mlp_hidden": 40},
        {"in_channels": 1},
        {"depth": 3},
    ])
    def test_instantiated_matches_formula(self, kw):
        from repro.profiling import vit_param_count

        cfg = tiny_cfg(**kw)
        model = VisionTransformer(cfg)
        assert model.num_parameters() == vit_param_count(cfg)


class TestTokenPruning:
    def make(self, depth=3):
        model = VisionTransformer(tiny_cfg(image_size=16, depth=depth),
                                  rng=np.random.default_rng(5))
        model.eval()
        return model

    def x(self, n=3):
        return nn.Tensor(RNG.normal(size=(n, 3, 16, 16)).astype(np.float32))

    def test_ratio_one_is_identity(self):
        model = self.make()
        x = self.x()
        with nn.no_grad():
            a = model.forward_features(x).data
            b = model.forward_features(x, token_keep_ratio=1.0).data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_none_is_identity(self):
        model = self.make()
        x = self.x()
        with nn.no_grad():
            a = model.forward_features(x).data
            b = model.forward_features(x, token_keep_ratio=None).data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_pruned_output_shape(self):
        model = self.make()
        with nn.no_grad():
            out = model.forward_features(self.x(), token_keep_ratio=0.5)
        assert out.shape == (3, 16)
        assert np.isfinite(out.data).all()

    def test_forward_logits_with_ratio(self):
        model = self.make()
        with nn.no_grad():
            out = model(self.x(), token_keep_ratio=0.5)
        assert out.shape == (3, 5)

    def test_invalid_ratio_raises(self):
        model = self.make()
        with pytest.raises(ValueError):
            with nn.no_grad():
                model.forward_features(self.x(), token_keep_ratio=0.0)

    def test_single_block_model_unaffected(self):
        model = self.make(depth=1)
        x = self.x()
        with nn.no_grad():
            a = model.forward_features(x).data
            b = model.forward_features(x, token_keep_ratio=0.25).data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_output_changes_when_pruning(self):
        model = self.make()
        x = self.x()
        with nn.no_grad():
            a = model.forward_features(x).data
            b = model.forward_features(x, token_keep_ratio=0.25).data
        assert not np.allclose(a, b)


class TestTokenPrunedFlops:
    def test_ratio_one_equals_paper(self):
        from repro.profiling import paper_flops, token_pruned_flops

        cfg = vit_base_config()
        assert token_pruned_flops(cfg, 1.0) == paper_flops(cfg)

    def test_pruning_reduces_flops(self):
        from repro.profiling import paper_flops, token_pruned_flops

        cfg = vit_base_config()
        assert token_pruned_flops(cfg, 0.5) < paper_flops(cfg)

    def test_monotone_in_ratio(self):
        from repro.profiling import token_pruned_flops

        cfg = vit_base_config()
        values = [token_pruned_flops(cfg, r) for r in (0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)

    def test_invalid_ratio_raises(self):
        from repro.profiling import token_pruned_flops

        with pytest.raises(ValueError):
            token_pruned_flops(vit_base_config(), 1.5)
