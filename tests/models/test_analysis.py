"""Attention-analysis tool tests."""

import numpy as np
import pytest

from repro.models.analysis import (
    attention_entropy,
    attention_rollout,
    cls_attention_map,
    collect_attention_maps,
    head_importance_profile,
)
from repro.models.vit import ViTConfig, VisionTransformer

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def model():
    cfg = ViTConfig(image_size=16, patch_size=4, num_classes=5, depth=3,
                    embed_dim=16, num_heads=2)
    m = VisionTransformer(cfg, rng=np.random.default_rng(1))
    m.eval()
    return m


@pytest.fixture(scope="module")
def x():
    return RNG.normal(size=(2, 3, 16, 16)).astype(np.float32)


class TestAttentionMaps:
    def test_one_map_per_block(self, model, x):
        maps = collect_attention_maps(model, x)
        assert len(maps) == 3
        assert all(m.shape == (2, 2, 17, 17) for m in maps)

    def test_maps_are_distributions(self, model, x):
        for attn in collect_attention_maps(model, x):
            np.testing.assert_allclose(attn.sum(axis=-1), 1.0, rtol=1e-4)
            assert (attn >= 0).all()

    def test_cls_map_shape(self, model, x):
        cls = cls_attention_map(model, x)
        assert cls.shape == (2, 16)
        assert (cls >= 0).all()

    def test_cls_map_block_selection(self, model, x):
        first = cls_attention_map(model, x, block_index=0)
        last = cls_attention_map(model, x, block_index=-1)
        assert not np.allclose(first, last)


class TestEntropy:
    def test_shape(self, model, x):
        ent = attention_entropy(model, x)
        assert ent.shape == (3, 2)

    def test_bounded_by_log_p(self, model, x):
        ent = attention_entropy(model, x)
        assert (ent >= 0).all()
        assert (ent <= np.log(17) + 1e-6).all()


class TestRollout:
    def test_shape_and_normalization(self, model, x):
        roll = attention_rollout(model, x)
        assert roll.shape == (2, 16)
        np.testing.assert_allclose(roll.sum(axis=-1), 1.0, rtol=1e-6)
        assert (roll >= 0).all()

    def test_max_fusion(self, model, x):
        roll = attention_rollout(model, x, head_fusion="max")
        assert roll.shape == (2, 16)

    def test_unknown_fusion_raises(self, model, x):
        with pytest.raises(ValueError):
            attention_rollout(model, x, head_fusion="median")

    def test_differs_from_single_block_cls(self, model, x):
        roll = attention_rollout(model, x)
        single = cls_attention_map(model, x, block_index=0)
        single = single / single.sum(axis=-1, keepdims=True)
        assert not np.allclose(roll, single, atol=1e-3)


class TestHeadImportance:
    def test_shape_and_positive(self, model, x):
        prof = head_importance_profile(model, x)
        assert prof.shape == (3, 2)
        assert (prof > 0).all()

    def test_zeroed_head_values_score_zero(self, model, x):
        import copy

        cfg = model.config
        clone = VisionTransformer(cfg, rng=np.random.default_rng(1))
        clone.load_state_dict(model.state_dict())
        clone.eval()
        a = cfg.resolved_attn_dim
        # Zero the V rows of head 0 in block 0.
        clone.blocks[0].attn.qkv.weight.data[2 * a:2 * a + cfg.head_dim] = 0.0
        clone.blocks[0].attn.qkv.bias.data[2 * a:2 * a + cfg.head_dim] = 0.0
        prof = head_importance_profile(clone, x)
        assert prof[0, 0] == pytest.approx(0.0, abs=1e-8)
        assert prof[0, 1] > 0
