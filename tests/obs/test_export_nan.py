"""Regression: exporters reject NaN/Infinity at write time instead of
emitting non-standard JSON (PR 8: ``allow_nan=False`` everywhere)."""

import math

import pytest

from repro.obs import SpanRecord
from repro.obs.export import jsonl_lines, write_chrome_trace, write_jsonl


def nan_span():
    return SpanRecord(name="request", trace_id=1, span_id="a",
                      parent_id=None, process="server", thread="serve",
                      ts=100.0, duration_s=0.01,
                      attrs={"ratio": math.nan})


def test_jsonl_lines_reject_nan_attrs():
    with pytest.raises(ValueError):
        jsonl_lines([nan_span()])


def test_write_jsonl_rejects_nan_attrs(tmp_path):
    with pytest.raises(ValueError):
        write_jsonl([nan_span()], str(tmp_path / "spans.jsonl"))


def test_chrome_trace_rejects_nan_attrs(tmp_path):
    with pytest.raises(ValueError):
        write_chrome_trace([nan_span()], str(tmp_path / "trace.json"))


def test_finite_attrs_still_export(tmp_path):
    span = SpanRecord(name="request", trace_id=1, span_id="a",
                      parent_id=None, process="server", thread="serve",
                      ts=100.0, duration_s=0.01, attrs={"ratio": 0.5})
    assert write_jsonl([span], str(tmp_path / "spans.jsonl")) == 1
