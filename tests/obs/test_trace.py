"""Tracing unit tests: spans, propagation, ring buffer, global switch."""

import threading

import pytest

from repro.obs import (
    NOOP_SPAN,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_span_id,
    span,
    span_dict,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class TestSpanIds:
    def test_unique_and_pid_prefixed(self):
        import os
        ids = {new_span_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith(f"{os.getpid():x}-") for i in ids)


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        s = span("anything", foo=1)
        assert s is NOOP_SPAN
        with s as inner:
            inner.set("key", "value")   # must be a silent no-op

    def test_enable_returns_fresh_tracer(self):
        first = enable_tracing()
        with span("a"):
            pass
        second = enable_tracing()
        assert second is get_tracer() and second is not first
        assert len(second) == 0 and len(first) == 1

    def test_disable_keeps_spans_readable(self):
        enable_tracing()
        with span("kept"):
            pass
        disable_tracing()
        assert [s.name for s in get_tracer().spans()] == ["kept"]
        assert span("dropped") is NOOP_SPAN


class TestLiveSpans:
    def test_records_name_timing_attrs(self):
        tracer = enable_tracing()
        with span("work", trace_id=7, size=3) as live:
            live.set("extra", True)
        (record,) = tracer.spans()
        assert record.name == "work" and record.trace_id == 7
        assert record.attrs == {"size": 3, "extra": True}
        assert record.process == "server"
        assert record.duration_s >= 0 and record.ts > 0
        assert record.parent_id is None

    def test_nesting_sets_parent_and_inherits_trace(self):
        tracer = enable_tracing()
        with span("outer", trace_id=42) as outer:
            with span("inner"):
                pass
        inner, recorded_outer = tracer.spans()
        assert recorded_outer.span_id == outer.span_id
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == 42      # inherited from the open parent

    def test_exception_captured_and_reraised(self):
        tracer = enable_tracing()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("bad")
        (record,) = tracer.spans()
        assert record.attrs["error"] == "ValueError: bad"

    def test_stacks_are_per_thread(self):
        tracer = enable_tracing()
        seen = {}

        def other():
            with span("thread-span") as s:
                seen["parent"] = s.parent_id

        with span("main-span"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        # The other thread must NOT parent onto this thread's open span.
        assert seen["parent"] is None
        assert len(tracer.spans()) == 2


class TestPropagation:
    def test_activate_adopts_remote_context(self):
        tracer = enable_tracing()
        with tracer.activate("trace-9", "remote-span"):
            with span("child"):
                pass
        (child,) = tracer.spans()
        assert child.trace_id == "trace-9"
        assert child.parent_id == "remote-span"

    def test_current_context_wire_shape(self):
        tracer = enable_tracing()
        assert tracer.current_context() is None
        with span("open", trace_id=5) as live:
            assert tracer.current_context() == \
                {"trace_id": 5, "parent_id": live.span_id}

    def test_span_dict_roundtrip(self):
        tracer = enable_tracing()
        wire = span_dict("worker.forward", 3, "w-1", "s-1", "w0",
                         1000.0, 0.25, {"samples": 4})
        tracer.record_dicts([wire])
        (record,) = tracer.spans()
        assert isinstance(record, SpanRecord)
        assert record.process == "w0" and record.parent_id == "s-1"
        assert record.ts == 1000.0 and record.duration_s == 0.25
        assert record.attrs == {"samples": 4}


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_overflow_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit(f"s{i}")
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_drain_empties_buffer(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.emit("b")
        assert [s.name for s in tracer.drain()] == ["a", "b"]
        assert len(tracer) == 0 and tracer.spans() == []

    def test_emit_defaults(self):
        tracer = Tracer(process="w3")
        record = tracer.emit("x")
        assert record.process == "w3"
        assert record.span_id and record.parent_id is None
        assert record.ts > 0 and record.duration_s == 0.0
