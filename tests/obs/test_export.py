"""Exporter tests: JSONL shape and Chrome trace-event (Perfetto) JSON."""

import json

import pytest

from repro.obs import (
    SpanRecord,
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)


def make_spans():
    return [
        SpanRecord(name="batch.serve", trace_id=1, span_id="a", parent_id=None,
                   process="server", thread="serve", ts=100.0,
                   duration_s=0.02, attrs={"requests": 2}),
        SpanRecord(name="worker.forward", trace_id=1, span_id="b",
                   parent_id="a", process="w0", thread="MainThread",
                   ts=100.005, duration_s=0.01, attrs={}),
        SpanRecord(name="batch.fusion", trace_id=1, span_id="c",
                   parent_id="a", process="server", thread="serve",
                   ts=100.016, duration_s=0.003, attrs={}),
    ]


class TestJsonl:
    def test_every_line_is_stamped(self):
        lines = jsonl_lines(make_spans())
        assert len(lines) == 3
        for line, span in zip(lines, make_spans()):
            data = json.loads(line)
            assert data["schema_version"] == TRACE_SCHEMA_VERSION
            assert data["started_at"] == span.ts
            assert data["name"] == span.name
            assert data["trace_id"] == span.trace_id

    def test_accepts_plain_dicts(self):
        wire = make_spans()[1].to_dict()
        (line,) = jsonl_lines([wire])
        assert json.loads(line)["process"] == "w0"

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = write_jsonl(make_spans(), str(path))
        assert count == 3
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["span_id"] for line in lines] == \
            ["a", "b", "c"]


class TestChromeTrace:
    def test_structure(self):
        trace = chrome_trace(make_spans())
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        assert process_names == {"server", "w0"}
        assert trace["otherData"]["span_count"] == 3
        assert trace["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
        assert trace["otherData"]["started_at"] == 100.0

    def test_timestamps_normalized_to_microseconds(self):
        trace = chrome_trace(make_spans())
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["batch.serve"]["ts"] == 0.0
        assert by_name["worker.forward"]["ts"] == \
            pytest.approx(5000.0, abs=0.5)
        assert by_name["batch.serve"]["dur"] == \
            pytest.approx(20000.0, abs=0.5)

    def test_args_carry_identity_and_attrs(self):
        trace = chrome_trace(make_spans())
        serve = next(e for e in trace["traceEvents"]
                     if e.get("name") == "batch.serve" and e["ph"] == "X")
        assert serve["args"]["span_id"] == "a"
        assert serve["args"]["requests"] == 2
        assert serve["cat"] == "batch"

    def test_processes_get_distinct_pids(self):
        trace = chrome_trace(make_spans())
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome_trace(make_spans(), str(path)) == 3
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) >= 3

    def test_empty_input(self):
        trace = chrome_trace([])
        assert trace["traceEvents"] == []
        assert trace["otherData"]["span_count"] == 0
