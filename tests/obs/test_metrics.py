"""Metrics-registry unit tests: instruments, series keys, snapshots."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.metrics import _series_key


class TestCounter:
    def test_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.snapshot() == {"type": "counter", "value": 3.5}


class TestGauge:
    def test_up_and_down(self):
        g = Gauge()
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0
        assert g.snapshot()["type"] == "gauge"


class TestHistogram:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_count_sum_min_max(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4 and h.sum == 555.5
        snap = h.snapshot()
        assert snap["min"] == 0.5 and snap["max"] == 500.0
        assert snap["buckets"] == [1, 1, 1, 1]   # incl. overflow bucket

    def test_quantiles(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for _ in range(100):
            h.observe(1.5)
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0                   # inside the winning bucket
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_none(self):
        h = Histogram()
        assert h.quantile(0.95) is None
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["p95"] is None
        assert snap["mean"] is None


class TestSeriesKeys:
    def test_labels_sorted_into_key(self):
        assert _series_key("m", {}) == "m"
        assert _series_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("x.total", worker="w0")
        b = reg.counter("x.total", worker="w0")
        c = reg.counter("x.total", worker="w1")
        assert a is b and a is not c
        assert len(reg) == 2

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x.total")
        with pytest.raises(TypeError):
            reg.gauge("x.total")
        with pytest.raises(TypeError):
            reg.histogram("x.total")

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("serving.requests_total").inc()
        reg.gauge("edge.inflight", worker="w0").set(2)
        snap = reg.snapshot("serving.")
        assert list(snap) == ["serving.requests_total"]
        full = reg.snapshot()
        assert set(full) == {"serving.requests_total",
                             "edge.inflight{worker=w0}"}

    def test_snapshot_is_json_safe(self):
        import json
        reg = MetricsRegistry()
        reg.histogram("lat.seconds").observe(0.01)
        reg.counter("n.total").inc()
        json.dumps(reg.snapshot())   # must not raise

    def test_render_text_skips_empty_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("empty.seconds")
        reg.counter("n.total").inc(3)
        text = reg.render_text()
        assert "empty.seconds" not in text
        assert "n.total  3" in text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a.total").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("a.total").value == 0.0

    def test_global_registry_is_singleton(self):
        assert get_registry() is get_registry()
