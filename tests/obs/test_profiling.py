"""ProfilingBackend tests: kernel timing, byte accounting, delegation."""

import numpy as np
import pytest

from repro import nn
from repro.obs import PROFILED_KERNELS, ProfilingBackend, get_registry
from repro.nn.backend import NumpyBackend, _resolve


def kernel_count(op: str, backend: str = "numpy") -> int:
    return get_registry().histogram(f"kernel.{op}_seconds",
                                    backend=backend).count


def kernel_bytes(op: str, backend: str = "numpy") -> float:
    return get_registry().counter(f"kernel.{op}_bytes_total",
                                  backend=backend).value


class TestConstruction:
    def test_default_inner_is_numpy(self):
        backend = ProfilingBackend()
        assert isinstance(backend.inner, NumpyBackend)
        assert backend.name == "profiled[numpy]"

    def test_refuses_double_wrap(self):
        with pytest.raises(TypeError):
            ProfilingBackend(ProfilingBackend())

    def test_registered_name_resolves(self):
        backend = _resolve("profiled")
        assert isinstance(backend, ProfilingBackend)
        # Per-name singleton, like every registered backend.
        assert _resolve("profiled") is backend


class TestTiming:
    def test_matmul_observed_with_bytes(self):
        backend = ProfilingBackend()
        a = np.ones((4, 8), dtype=np.float32)
        b = np.ones((8, 2), dtype=np.float32)
        before = kernel_count("matmul")
        bytes_before = kernel_bytes("matmul")
        y = backend.matmul(a, b)
        np.testing.assert_allclose(y, a @ b)
        assert kernel_count("matmul") == before + 1
        assert kernel_bytes("matmul") - bytes_before == \
            a.nbytes + b.nbytes + y.nbytes

    def test_every_profiled_kernel_has_instruments(self):
        backend = ProfilingBackend()
        for op in PROFILED_KERNELS:
            assert op in backend._seconds and op in backend._bytes

    def test_softmax_matches_inner(self):
        backend = ProfilingBackend()
        x = np.random.default_rng(0).normal(size=(3, 5)).astype(np.float32)
        before = kernel_count("softmax")
        np.testing.assert_allclose(backend.softmax(x),
                                   backend.inner.softmax(x))
        assert kernel_count("softmax") == before + 1

    def test_untimed_methods_delegate_to_inner(self):
        inner = NumpyBackend()
        backend = ProfilingBackend(inner)
        untimed = [attr for attr in dir(inner)
                   if not attr.startswith("_")
                   and attr not in PROFILED_KERNELS
                   and callable(getattr(inner, attr))]
        assert untimed, "expected at least one untimed public method"
        for attr in untimed:
            bound = getattr(backend, attr)
            assert getattr(bound, "__self__", None) is inner, attr


class TestEndToEnd:
    def test_model_forward_profiles_kernels(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(6, 8, rng=rng), nn.ReLU(),
                              nn.Linear(8, 3, rng=rng))
        x = rng.normal(size=(2, 6)).astype(np.float32)
        before = kernel_count("linear")
        with nn.use_backend(ProfilingBackend()):
            with nn.inference_mode():
                model(nn.Tensor(x))
        assert kernel_count("linear") > before
