"""Public-API hygiene: documented modules, importable __all__ entries."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.nn",
    "repro.models",
    "repro.profiling",
    "repro.data",
    "repro.pruning",
    "repro.splitting",
    "repro.assignment",
    "repro.edge",
    "repro.core",
    "repro.baselines",
    "repro.serving",
    "repro.planning",
    "repro.store",
    "repro.obs",
]

MODULES = SUBPACKAGES + [
    "repro.nn.tensor", "repro.nn.ops", "repro.nn.modules", "repro.nn.optim",
    "repro.nn.losses", "repro.nn.serialization", "repro.nn.init",
    "repro.nn.gradcheck",
    "repro.models.vit", "repro.models.vgg", "repro.models.snn",
    "repro.models.fusion", "repro.models.analysis",
    "repro.profiling.flops", "repro.profiling.memory",
    "repro.profiling.energy",
    "repro.data.synthetic", "repro.data.datasets", "repro.data.loaders",
    "repro.pruning.surgery", "repro.pruning.importance",
    "repro.pruning.structured", "repro.pruning.pipeline",
    "repro.pruning.channel",
    "repro.splitting.class_assignment", "repro.splitting.schedule",
    "repro.splitting.fusion",
    "repro.assignment.problem", "repro.assignment.greedy",
    "repro.assignment.optimal",
    "repro.edge.device", "repro.edge.network", "repro.edge.sim_core",
    "repro.edge.simulator", "repro.edge.runtime",
    "repro.core.training", "repro.core.edvit", "repro.core.metrics",
    "repro.core.experiments", "repro.core.deployment_io",
    "repro.baselines.split_cnn", "repro.baselines.split_snn",
    "repro.serving.batcher", "repro.serving.server", "repro.serving.loadgen",
    "repro.serving.telemetry", "repro.serving.demo",
    "repro.planning.plan", "repro.planning.planner", "repro.planning.replan",
    "repro.planning.execute",
    "repro.store.store",
    "repro.obs.trace", "repro.obs.metrics", "repro.obs.profile",
    "repro.obs.export",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", SUBPACKAGES + ["repro"])
def test_all_entries_exist(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for entry in module.__all__:
        assert hasattr(module, entry), f"{name}.__all__ lists missing {entry!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_is_sorted(name):
    module = importlib.import_module(name)
    assert list(module.__all__) == sorted(module.__all__), \
        f"{name}.__all__ is not sorted"


def test_public_classes_documented():
    """Every public class reachable from the top subpackages is documented."""
    undocumented = []
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        for entry in module.__all__:
            obj = getattr(module, entry)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(f"{name}.{entry}")
    assert not undocumented, f"undocumented classes: {undocumented}"


def test_version_string():
    assert repro.__version__.count(".") == 2
