"""FLOPs accounting tests — including the paper's Table I/II anchor points."""

import pytest

from repro.models.vit import ViTConfig, vit_base_config, vit_large_config, vit_small_config
from repro.profiling.flops import (
    detailed_flops,
    fusion_flops,
    mlp_flops,
    paper_flops,
    paper_flops_breakdown,
)


class TestPaperAnchors:
    def test_vit_small_matches_table1_exactly(self):
        # The paper's Section III formula reproduces its ViT-Small number.
        assert paper_flops(vit_small_config()) / 1e9 == pytest.approx(4.25, abs=0.01)

    def test_vit_base_within_5pct_of_table1(self):
        # Table I reports 16.86 G; the paper's own formula yields 16.17 G
        # (see EXPERIMENTS.md for the discrepancy discussion).
        assert paper_flops(vit_base_config()) / 1e9 == pytest.approx(16.86, rel=0.05)

    def test_vit_large_within_6pct_of_table1(self):
        assert paper_flops(vit_large_config()) / 1e9 == pytest.approx(59.69, rel=0.06)

    def test_half_heads_of_base_equals_small(self):
        # The paper's N=2 sub-model (6 of 12 heads) reports ViT-Small FLOPs.
        pruned = ViTConfig(num_classes=1000, depth=12, embed_dim=384,
                           num_heads=12, attn_dim=384, mlp_hidden=1536)
        small = vit_small_config()
        assert paper_flops(pruned) == pytest.approx(paper_flops(small), rel=1e-3)

    def test_gtzan_channel_difference(self):
        # Table II: 16.86 vs 16.79 G comes only from the 1- vs 3-channel
        # patch embedding (Δ = 196 * 512 * 768 MACs).
        rgb = paper_flops(vit_base_config(num_classes=10))
        mono = paper_flops(vit_base_config(num_classes=10, in_channels=1))
        assert (rgb - mono) == 196 * 2 * 256 * 768


class TestBreakdownStructure:
    def test_total_is_sum_of_parts(self):
        bd = paper_flops_breakdown(vit_base_config())
        parts = (bd.patch_embed + bd.attention_qkv + bd.attention_scores
                 + bd.attention_output_proj + bd.ffn + bd.head)
        assert bd.total == parts

    def test_paper_mode_excludes_output_proj(self):
        bd = paper_flops_breakdown(vit_base_config())
        assert bd.attention_output_proj == 0

    def test_detailed_exceeds_paper(self):
        cfg = vit_base_config()
        assert detailed_flops(cfg) > paper_flops(cfg)

    def test_ffn_dominates_vit_base(self):
        bd = paper_flops_breakdown(vit_base_config())
        assert bd.ffn > bd.attention_qkv > bd.attention_scores

    def test_as_dict_has_total(self):
        d = paper_flops_breakdown(vit_base_config()).as_dict()
        assert d["total"] == paper_flops(vit_base_config())


class TestScaling:
    def test_quadratic_in_embed_dim(self):
        # FFN+QKV dominate and scale ~d^2; halving d should cut FLOPs to
        # roughly a quarter (a bit more due to the p^2*d terms).
        base = paper_flops(vit_base_config())
        half = paper_flops(ViTConfig(depth=12, embed_dim=384, num_heads=12,
                                     attn_dim=384, mlp_hidden=1536))
        assert 0.2 < half / base < 0.3

    def test_linear_in_depth(self):
        d12 = paper_flops(vit_base_config())
        d24 = paper_flops(ViTConfig(depth=24, embed_dim=768, num_heads=12))
        blocks12 = d12 - paper_flops_breakdown(vit_base_config()).patch_embed
        assert (d24 - d12) == pytest.approx(blocks12
                                            - vit_base_config().embed_dim * 1000,
                                            rel=1e-6)

    def test_num_classes_only_affects_head(self):
        a = paper_flops(vit_base_config(num_classes=10))
        b = paper_flops(vit_base_config(num_classes=1000))
        assert b - a == 768 * 990


class TestMLPFlops:
    def test_mlp_flops(self):
        assert mlp_flops([4, 8, 2]) == 4 * 8 + 8 * 2

    def test_fusion_flops_uses_shrink(self):
        assert fusion_flops(100, 10, shrink=0.5) == 100 * 50 + 50 * 10

    def test_fusion_hidden_floor(self):
        assert fusion_flops(2, 2) == 2 * 4 + 4 * 2
