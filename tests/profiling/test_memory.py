"""Memory/parameter accounting tests, anchored to Table I and Section V."""

import numpy as np
import pytest

from repro.models.snn import ConvSNN, SNNConfig
from repro.models.vgg import VGG, vgg11_tiny_config
from repro.models.vit import ViTConfig, VisionTransformer, vit_base_config, vit_large_config, vit_small_config
from repro.profiling.memory import (
    module_param_count,
    module_size_mb,
    param_bytes,
    size_mb,
    snn_param_count,
    vgg_param_count,
    vit_param_count,
)


class TestViTParamAnchors:
    def test_vit_base_1000cls_params(self):
        # Table I: 86.6 M parameters.
        assert vit_param_count(vit_base_config()) / 1e6 == pytest.approx(86.6, abs=0.1)

    def test_vit_small_1000cls_params(self):
        assert vit_param_count(vit_small_config()) / 1e6 == pytest.approx(22.1, abs=0.1)

    def test_vit_large_1000cls_params(self):
        assert vit_param_count(vit_large_config()) / 1e6 == pytest.approx(304.4, abs=0.2)

    def test_vit_base_10cls_size_is_papers_327mb(self):
        # Section V-B: "The original model size is 327.38 MB".
        mb = size_mb(vit_param_count(vit_base_config(num_classes=10)))
        assert mb == pytest.approx(327.38, abs=0.5)

    def test_vit_small_10cls_size(self):
        # Section V-E: 82.71 MB.
        mb = size_mb(vit_param_count(vit_small_config(num_classes=10)))
        assert mb == pytest.approx(82.71, abs=0.2)

    def test_vit_large_10cls_size(self):
        # Section V-E: 1157 MB.
        mb = size_mb(vit_param_count(vit_large_config(num_classes=10)))
        assert mb == pytest.approx(1157, abs=2)

    def test_gtzan_model_size(self):
        # Section V-C: 325.88 MB for the single-channel audio ViT-Base.
        mb = size_mb(vit_param_count(vit_base_config(num_classes=10,
                                                     in_channels=1)))
        assert mb == pytest.approx(325.88, abs=0.5)


class TestAnalyticMatchesInstantiated:
    def test_vit(self):
        cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3, depth=2,
                        embed_dim=16, num_heads=2, attn_dim=8, mlp_hidden=24)
        assert VisionTransformer(cfg).num_parameters() == vit_param_count(cfg)

    def test_vgg(self):
        cfg = vgg11_tiny_config(num_classes=4, image_size=32, width_scale=0.25)
        assert VGG(cfg).num_parameters() == vgg_param_count(cfg)

    def test_vgg_without_batchnorm(self):
        import dataclasses

        cfg = dataclasses.replace(vgg11_tiny_config(image_size=32),
                                  batch_norm=False)
        assert VGG(cfg).num_parameters() == vgg_param_count(cfg)

    def test_snn(self):
        cfg = SNNConfig(image_size=16, num_classes=4, channels=(4, 8),
                        classifier_hidden=16)
        assert ConvSNN(cfg).num_parameters() == snn_param_count(cfg)

    def test_module_helpers(self):
        cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3, depth=1,
                        embed_dim=8, num_heads=2)
        model = VisionTransformer(cfg)
        assert module_param_count(model) == vit_param_count(cfg)
        assert module_size_mb(model) == size_mb(vit_param_count(cfg))


class TestUnits:
    def test_param_bytes_float32(self):
        assert param_bytes(1000) == 4000

    def test_size_mb_uses_mib(self):
        assert size_mb(2 ** 20 // 4) == pytest.approx(1.0)

    def test_pruned_submodel_size_ratio(self):
        # ViT-Base keeping 2/12 heads should be ~ (1/6)^2 of the original
        # (the paper's 9.60 MB @ N=10).
        base = vit_base_config(num_classes=10)
        pruned = ViTConfig(num_classes=1, depth=12, embed_dim=128,
                           num_heads=12, attn_dim=120, mlp_hidden=512)
        ratio = vit_param_count(pruned) / vit_param_count(base)
        assert 0.02 < ratio < 0.04
