"""Energy accounting tests."""

import pytest

from repro.models.vit import vit_base_config, vit_small_config
from repro.profiling import paper_flops
from repro.profiling.energy import (
    JOULES_PER_MAC,
    inference_energy_flops,
    inference_energy_joules,
    workload_energy_flops,
)


def test_energy_flops_equals_paper_flops():
    cfg = vit_base_config()
    assert inference_energy_flops(cfg) == paper_flops(cfg)


def test_workload_scales_linearly():
    cfg = vit_small_config()
    assert workload_energy_flops(cfg, 10) == 10 * paper_flops(cfg)


def test_joules_positive_and_proportional():
    small = inference_energy_joules(vit_small_config())
    base = inference_energy_joules(vit_base_config())
    assert small > 0
    assert base / small == pytest.approx(
        paper_flops(vit_base_config()) / paper_flops(vit_small_config()))


def test_physical_scale_plausible_for_pi():
    # A Pi-4B draws a few watts; ViT-Base at ~37 s should cost O(100) J.
    joules = inference_energy_joules(vit_base_config())
    assert 10 < joules < 1000


def test_constant_positive():
    assert JOULES_PER_MAC > 0
