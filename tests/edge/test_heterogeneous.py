"""Heterogeneous-fleet scenarios across the assignment + simulation stack."""

import pytest

from repro.assignment import greedy_assign, optimal_assign
from repro.edge.device import (
    DeviceModel,
    PI4B_MACS_PER_SECOND,
    heterogeneous_fleet,
    raspberry_pi_4b,
)
from repro.edge.simulator import DeploymentSpec, SubModelProfile, simulate_inference

GB = 2 ** 30


def mixed_fleet():
    return [
        DeviceModel("fast", macs_per_second=4 * PI4B_MACS_PER_SECOND,
                    memory_bytes=8 * GB, energy_flops=50e9),
        DeviceModel("pi", macs_per_second=PI4B_MACS_PER_SECOND,
                    memory_bytes=4 * GB, energy_flops=20e9),
        DeviceModel("slow", macs_per_second=0.25 * PI4B_MACS_PER_SECOND,
                    memory_bytes=1 * GB, energy_flops=5e9),
    ]


def submodel_specs(flops_list):
    from repro.assignment import SubModelSpec

    return [SubModelSpec(f"m{i}", size_bytes=10 * 2 ** 20,
                         flops_per_sample=float(f))
            for i, f in enumerate(flops_list)]


class TestAssignmentOnMixedFleet:
    def test_greedy_prefers_high_energy_device(self):
        fleet = [d.to_spec() for d in mixed_fleet()]
        plan = greedy_assign(fleet, submodel_specs([4e9]), num_samples=1)
        assert plan.mapping["m0"] == "fast"

    def test_energy_constraint_excludes_slow_device(self):
        fleet = [d.to_spec() for d in mixed_fleet()]
        # 6 GFLOPs workload exceeds the slow device's 5e9 budget.
        plan = greedy_assign(fleet, submodel_specs([6e9, 6e9, 6e9]),
                             num_samples=1)
        assert "slow" not in plan.mapping.values()

    def test_optimal_balances_across_fast_devices(self):
        fleet = [d.to_spec() for d in mixed_fleet()]
        plan = optimal_assign(fleet, submodel_specs([10e9, 10e9]),
                              num_samples=1)
        # Packing both on "fast" leaves it at 30e9 (the hosted min);
        # splitting fast/pi leaves min(40e9, 10e9) = 10e9 — so the optimum
        # packs both on the fast board.
        assert plan.objective == pytest.approx(30e9)


class TestSimulationOnMixedFleet:
    def make_spec(self, placement):
        fleet = mixed_fleet()
        profiles = {m: SubModelProfile(m, 2e9, 128) for m in placement}
        return DeploymentSpec(devices=fleet, placement=placement,
                              profiles=profiles,
                              fusion_device=raspberry_pi_4b("fusion"),
                              fusion_flops=1e6)

    def test_slow_device_dominates_critical_path(self):
        all_fast = simulate_inference(
            self.make_spec({"m0": "fast", "m1": "fast"}), 1).max_latency
        with_slow = simulate_inference(
            self.make_spec({"m0": "fast", "m1": "slow"}), 1).max_latency
        assert with_slow > all_fast

    def test_heterogeneous_fleet_helper(self):
        fleet = heterogeneous_fleet([1.0, 2.0, 0.5])
        assert len(fleet) == 3
        latencies = [d.compute_seconds(1e9) for d in fleet]
        assert latencies[1] < latencies[0] < latencies[2]

    def test_same_work_faster_on_faster_fleet(self):
        slow_fleet = heterogeneous_fleet([1.0, 1.0])
        fast_fleet = heterogeneous_fleet([3.0, 3.0])

        def run(fleet):
            profiles = {"m0": SubModelProfile("m0", 2e9, 64),
                        "m1": SubModelProfile("m1", 2e9, 64)}
            placement = {"m0": fleet[0].device_id, "m1": fleet[1].device_id}
            spec = DeploymentSpec(devices=fleet, placement=placement,
                                  profiles=profiles,
                                  fusion_device=raspberry_pi_4b("f"),
                                  fusion_flops=0.0)
            return simulate_inference(spec, 1).max_latency

        assert run(fast_fleet) < run(slow_fleet)
