"""The worker wire protocol: typed constructors, accessors, arity."""

import pytest

from repro.edge import wire


class TestConstructors:
    def test_every_constructor_matches_declared_arity(self):
        messages = [
            wire.infer_message(7, "x"),
            wire.infer_message(7, "x", {"trace_id": 9}),
            wire.stop_message(),
            wire.ready_message("w0"),
            wire.failed_message("w0", "boom"),
            wire.features_message(7, b"data", {"t": 1.0}),
            wire.error_message(7, "bad"),
            wire.stopped_message("w0"),
        ]
        for message in messages:
            assert wire.check(message) is message

    def test_infer_without_trace_is_the_legacy_3_tuple(self):
        assert wire.infer_message(3, "x") == (wire.INFER, 3, "x")

    def test_infer_with_trace_carries_it_as_4th_element(self):
        trace = {"trace_id": 1, "parent_id": "a"}
        message = wire.infer_message(3, "x", trace)
        assert len(message) == 4
        assert wire.trace_context(message) == trace

    def test_trace_context_is_none_on_legacy_tuples(self):
        assert wire.trace_context(wire.infer_message(3, "x")) is None


class TestAccessors:
    def test_command_and_request_id(self):
        message = wire.features_message(11, b"f", {})
        assert wire.command(message) == wire.FEATURES
        assert wire.request_id(message) == 11

    def test_payload_and_stats(self):
        message = wire.features_message(1, b"encoded", {"infer_s": 0.5})
        assert wire.payload(message) == b"encoded"
        assert wire.stats(message) == {"infer_s": 0.5}

    def test_error_payload_is_the_detail(self):
        assert wire.payload(wire.error_message(None, "why")) == "why"

    def test_startup_detail_reads_failed_message(self):
        assert wire.startup_detail(wire.failed_message("w0", "oom")) == "oom"

    def test_startup_detail_degrades_on_short_messages(self):
        # Malformed legacy replies must still print *something*.
        assert wire.startup_detail(("ready", "w0")) == ("ready", "w0")


class TestCheck:
    def test_unknown_command_rejected(self):
        with pytest.raises(wire.WireError, match="unknown wire command"):
            wire.check(("banana", 1, 2))

    def test_arity_drift_rejected(self):
        with pytest.raises(wire.WireError, match="elements"):
            wire.check((wire.READY, "w0", "extra"))

    def test_non_tuple_rejected(self):
        with pytest.raises(wire.WireError):
            wire.check(["infer", 1, "x"])

    def test_every_command_has_arity(self):
        assert set(wire.ARITY) == set(wire.COMMANDS)
