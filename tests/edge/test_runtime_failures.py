"""Edge-runtime failure paths: crashes, timeouts, bad replies, shutdown.

The seed implementation blocked forever in ``conn.recv()`` when a worker
died mid-request; these tests pin the fixed behavior — every failure mode
surfaces as a typed :exc:`WorkerFailure` within a bounded time.
"""

import numpy as np
import pytest

from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import EdgeCluster, WorkerFailure, WorkerSpec
from repro.models.vit import ViTConfig, VisionTransformer


def tiny_model(seed=0):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3,
                    depth=1, embed_dim=8, num_heads=2)
    return VisionTransformer(cfg, rng=np.random.default_rng(seed))


def make_worker(worker_id, seed=0, macs_per_second=1e12):
    model = tiny_model(seed=seed)
    return WorkerSpec.from_vit(
        worker_id, model, flops_per_sample=1e6,
        device=DeviceModel(device_id=worker_id,
                           macs_per_second=macs_per_second),
        link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0))


X = np.zeros((2, 3, 8, 8), dtype=np.float32)


class TestWorkerCrash:
    def test_dead_worker_raises_instead_of_hanging(self):
        with EdgeCluster([make_worker("a"), make_worker("b", seed=1)]) as cluster:
            cluster.kill_worker("a")
            with pytest.raises(WorkerFailure) as info:
                cluster.infer_features(X, timeout=10.0)
            assert info.value.worker_id == "a"
            assert "a" in cluster.down_workers

    def test_surviving_worker_still_answers_after_peer_death(self):
        with EdgeCluster([make_worker("a"), make_worker("b", seed=1)]) as cluster:
            healthy, _ = cluster.infer_features(X)
            cluster.kill_worker("a")
            with pytest.raises(WorkerFailure):
                cluster.infer_features(X, timeout=10.0)
            # The non-blocking primitives keep working on the survivor.
            request_id = cluster.next_request_id()
            assert cluster.submit("b", request_id, X)
            reply = None
            for _ in range(100):
                replies = cluster.poll(0.1)
                fresh = [m for w, m in replies
                         if w == "b" and m[0] == "features"
                         and m[1] == request_id]
                if fresh:
                    reply = fresh[0]
                    break
            assert reply is not None
            np.testing.assert_allclose(reply[2], healthy["b"])

    def test_slow_worker_times_out(self):
        # 1e9 MACs at 1e6 MACs/s = 1000 s emulated; time_scale=1 sleeps it.
        spec = make_worker("slow", macs_per_second=1e6)
        spec.flops_per_sample = 1e9
        with EdgeCluster([spec], time_scale=1.0) as cluster:
            with pytest.raises(WorkerFailure) as info:
                cluster.infer_features(X, timeout=0.3)
            assert "no reply" in info.value.reason
            assert "slow" in cluster.down_workers


class TestBadReplies:
    def test_unknown_command_reply_is_typed_error(self):
        with EdgeCluster([make_worker("a")]) as cluster:
            cluster._handles["a"].send(("bogus",))
            replies = cluster.poll(5.0)
            assert replies and replies[0][1][0] == "error"
            assert "unknown command" in replies[0][1][2]
            # The worker survives a bad command and keeps serving.
            features, _ = cluster.infer_features(X)
            assert features["a"].shape[0] == len(X)

    def test_infer_error_reply_raises_but_worker_survives(self):
        with EdgeCluster([make_worker("a")]) as cluster:
            bad = np.zeros((1, 5, 8, 8), dtype=np.float32)   # wrong channels
            with pytest.raises(WorkerFailure):
                cluster.infer_features(bad, timeout=10.0)
            assert cluster.is_alive("a")
            features, _ = cluster.infer_features(X)
            assert features["a"].shape[0] == len(X)

    def test_stale_error_from_second_worker_does_not_poison_next_request(self):
        # Both workers error on the bad input; infer_features raises on the
        # first reply and the second stays buffered.  The next (valid)
        # request must skip that stale error instead of raising on it.
        with EdgeCluster([make_worker("a"), make_worker("b", seed=1)]) as cluster:
            bad = np.zeros((1, 5, 8, 8), dtype=np.float32)
            with pytest.raises(WorkerFailure):
                cluster.infer_features(bad, timeout=10.0)
            features, _ = cluster.infer_features(X, timeout=10.0)
            assert set(features) == {"a", "b"}


class TestShutdown:
    def test_shutdown_twice_is_idempotent(self):
        cluster = EdgeCluster([make_worker("a")])
        cluster.start()
        cluster.shutdown()
        cluster.shutdown()                     # must be a no-op
        assert not cluster.started

    def test_shutdown_with_dead_worker_does_not_hang(self):
        cluster = EdgeCluster([make_worker("a"), make_worker("b", seed=1)])
        cluster.start()
        cluster.kill_worker("a")
        cluster.shutdown()                     # bounded, no exception
        assert not cluster.started

    def test_restart_after_shutdown(self):
        spec = make_worker("a")
        cluster = EdgeCluster([spec])
        cluster.start()
        cluster.shutdown()
        cluster.start()
        features, _ = cluster.infer_features(X)
        assert features["a"].shape[0] == len(X)
        cluster.shutdown()


class TestMarkDown:
    def test_mark_down_excludes_worker_from_liveness(self):
        with EdgeCluster([make_worker("a"), make_worker("b", seed=1)]) as cluster:
            cluster.mark_down("a", "operator said so")
            assert cluster.live_workers() == ["b"]
            assert cluster.down_workers == {"a": "operator said so"}
            cluster.mark_down("a", "again")    # idempotent, keeps first reason
            assert cluster.down_workers["a"] == "operator said so"
