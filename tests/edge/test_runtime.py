"""Process-based edge-emulation tests.

These spawn real OS processes; models are kept minuscule so the suite
stays fast.
"""

import numpy as np
import pytest

from repro import nn
from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.models.fusion import build_fusion_for
from repro.models.vit import ViTConfig, VisionTransformer


def tiny_model(num_classes=3, seed=0):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=num_classes,
                    depth=1, embed_dim=8, num_heads=2)
    return VisionTransformer(cfg, rng=np.random.default_rng(seed))


def fast_device(device_id):
    return DeviceModel(device_id=device_id, macs_per_second=1e12)


def make_worker(worker_id, seed=0):
    model = tiny_model(seed=seed)
    return WorkerSpec.from_vit(worker_id, model, flops_per_sample=1e6,
                               device=fast_device(worker_id),
                               link=LinkModel(bandwidth_bps=1e9,
                                              overhead_seconds=0.0)), model


@pytest.fixture(scope="module")
def cluster_and_models():
    specs_models = [make_worker(f"w{i}", seed=i) for i in range(2)]
    specs = [sm[0] for sm in specs_models]
    models = [sm[1] for sm in specs_models]
    cluster = EdgeCluster(specs, time_scale=0.0)
    cluster.start()
    yield cluster, models
    cluster.shutdown()


class TestEdgeCluster:
    def test_features_match_local_models(self, cluster_and_models):
        cluster, models = cluster_and_models
        x = np.random.default_rng(0).normal(size=(3, 3, 8, 8)).astype(np.float32)
        features, _ = cluster.infer_features(x)
        for i, model in enumerate(models):
            model.eval()
            with nn.no_grad():
                local = model.forward_features(nn.Tensor(x)).data
            np.testing.assert_allclose(features[f"w{i}"], local, atol=1e-5)

    def test_timing_report_fields(self, cluster_and_models):
        cluster, _ = cluster_and_models
        x = np.zeros((1, 3, 8, 8), dtype=np.float32)
        _, timing = cluster.infer_features(x)
        assert timing.wall_seconds > 0
        assert set(timing.per_worker) == {"w0", "w1"}
        for report in timing.per_worker.values():
            assert report["emulated_compute_s"] > 0
            assert report["emulated_transfer_s"] > 0

    def test_emulated_critical_path(self, cluster_and_models):
        cluster, _ = cluster_and_models
        x = np.zeros((1, 3, 8, 8), dtype=np.float32)
        _, timing = cluster.infer_features(x)
        per = timing.per_worker["w0"]
        assert timing.emulated_critical_path >= (per["emulated_compute_s"]
                                                 + per["emulated_transfer_s"])

    def test_fused_inference(self, cluster_and_models):
        cluster, models = cluster_and_models
        fusion = build_fusion_for([m.feature_dim() for m in models],
                                  num_classes=5)
        x = np.zeros((4, 3, 8, 8), dtype=np.float32)
        pred, _ = cluster.infer_fused(x, fusion)
        assert pred.shape == (4,)
        assert set(pred).issubset(set(range(5)))

    def test_multiple_inferences_same_cluster(self, cluster_and_models):
        cluster, _ = cluster_and_models
        x = np.zeros((1, 3, 8, 8), dtype=np.float32)
        a, _ = cluster.infer_features(x)
        b, _ = cluster.infer_features(x)
        np.testing.assert_allclose(a["w0"], b["w0"])

    def test_infer_before_start_raises(self):
        spec, _ = make_worker("solo")
        cluster = EdgeCluster([spec])
        with pytest.raises(RuntimeError):
            cluster.infer_features(np.zeros((1, 3, 8, 8), dtype=np.float32))

    def test_duplicate_worker_ids_raise(self):
        spec, _ = make_worker("dup")
        with pytest.raises(ValueError):
            EdgeCluster([spec, spec])

    def test_empty_worker_list_raises(self):
        with pytest.raises(ValueError):
            EdgeCluster([])


class TestContextManager:
    def test_with_block_starts_and_stops(self):
        spec, model = make_worker("ctx")
        with EdgeCluster([spec]) as cluster:
            x = np.zeros((1, 3, 8, 8), dtype=np.float32)
            features, _ = cluster.infer_features(x)
            assert "ctx" in features
        # After exit, a new cluster can be built from the same spec.
        with EdgeCluster([spec]) as cluster:
            cluster.infer_features(x)

    def test_time_scale_slows_inference(self):
        spec, _ = make_worker("slow")
        # 1e6 MACs at 1e7 MACs/s = 0.1 s emulated; time_scale=1 sleeps it.
        spec.device = DeviceModel(device_id="slow", macs_per_second=1e7)
        with EdgeCluster([spec], time_scale=1.0) as cluster:
            import time

            x = np.zeros((1, 3, 8, 8), dtype=np.float32)
            start = time.perf_counter()
            cluster.infer_features(x)
            elapsed = time.perf_counter() - start
        assert elapsed >= 0.08
