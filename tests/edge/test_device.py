"""Device-model tests, anchored to the Table I calibration."""

import pytest

from repro.edge.device import (
    DeviceModel,
    PI4B_MACS_PER_SECOND,
    heterogeneous_fleet,
    make_fleet,
    raspberry_pi_4b,
)
from repro.models.vit import vit_base_config, vit_large_config, vit_small_config
from repro.profiling import paper_flops


class TestCalibration:
    def test_vit_base_latency_matches_table1_exactly(self):
        pi = raspberry_pi_4b("pi")
        latency = pi.compute_seconds(paper_flops(vit_base_config()))
        assert latency == pytest.approx(36.94, abs=0.01)

    def test_vit_small_latency_within_2pct(self):
        pi = raspberry_pi_4b("pi")
        latency = pi.compute_seconds(paper_flops(vit_small_config()))
        assert latency == pytest.approx(9.628, rel=0.02)

    def test_vit_large_latency_within_10pct(self):
        pi = raspberry_pi_4b("pi")
        latency = pi.compute_seconds(paper_flops(vit_large_config()))
        assert latency == pytest.approx(118.828, rel=0.10)

    def test_throughput_is_sub_gigaflop(self):
        # A Pi 4B runs large transformers at well under 1 GMAC/s.
        assert 0.1e9 < PI4B_MACS_PER_SECOND < 1.0e9


class TestDeviceModel:
    def test_compute_seconds_linear(self):
        dev = DeviceModel("d", macs_per_second=1e9)
        assert dev.compute_seconds(2e9) == pytest.approx(2.0)

    def test_zero_flops_zero_time(self):
        assert raspberry_pi_4b("pi").compute_seconds(0) == 0.0

    def test_negative_flops_raises(self):
        with pytest.raises(ValueError):
            raspberry_pi_4b("pi").compute_seconds(-1)

    def test_to_spec_roundtrip(self):
        dev = raspberry_pi_4b("pi-3")
        spec = dev.to_spec()
        assert spec.device_id == "pi-3"
        assert spec.memory_bytes == dev.memory_bytes


class TestFleets:
    def test_make_fleet_ids_unique(self):
        fleet = make_fleet(5)
        assert len({d.device_id for d in fleet}) == 5

    def test_make_fleet_overrides(self):
        fleet = make_fleet(2, macs_per_second=123.0)
        assert all(d.macs_per_second == 123.0 for d in fleet)

    def test_heterogeneous_fleet_scales_throughput(self):
        fleet = heterogeneous_fleet([1.0, 2.0])
        assert fleet[1].macs_per_second == pytest.approx(
            2 * fleet[0].macs_per_second)
