"""Distributed-inference simulator tests."""

import pytest

from repro.edge.device import DeviceModel, make_fleet, raspberry_pi_4b
from repro.edge.network import LinkModel, StarTopology
from repro.edge.simulator import (
    DeploymentSpec,
    SubModelProfile,
    simulate_inference,
    single_device_latency,
)


def make_spec(num_devices=2, flops=1e9, feature_dim=128, fusion_flops=1e6,
              input_bytes=0, link_bps=2e6):
    devices = make_fleet(num_devices)
    profiles = {}
    placement = {}
    for i in range(num_devices):
        mid = f"m{i}"
        profiles[mid] = SubModelProfile(model_id=mid, flops_per_sample=flops,
                                        feature_dim=feature_dim)
        placement[mid] = devices[i].device_id
    ids = [d.device_id for d in devices] + ["pi-fusion"]
    topo = StarTopology(device_links={
        d: LinkModel(bandwidth_bps=link_bps, overhead_seconds=0.0)
        for d in ids})
    return DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles,
                          fusion_device=raspberry_pi_4b("pi-fusion"),
                          fusion_flops=fusion_flops, topology=topo,
                          input_bytes=input_bytes)


class TestSingleSample:
    def test_latency_is_critical_path(self):
        spec = make_spec(num_devices=2, flops=1e9)
        result = simulate_inference(spec, num_samples=1)
        device = spec.devices[0]
        expected = (device.compute_seconds(1e9)
                    + 128 * 4 * 8 / 2e6
                    + spec.fusion_device.compute_seconds(1e6))
        assert result.latencies[0] == pytest.approx(expected, rel=1e-6)

    def test_parallel_devices_do_not_add_up(self):
        one = simulate_inference(make_spec(num_devices=1), 1).latencies[0]
        ten = simulate_inference(make_spec(num_devices=10), 1).latencies[0]
        assert ten == pytest.approx(one, rel=1e-6)

    def test_slower_submodel_dominates(self):
        spec = make_spec(num_devices=2)
        spec.profiles["m1"] = SubModelProfile("m1", flops_per_sample=4e9,
                                              feature_dim=128)
        result = simulate_inference(spec, 1)
        assert result.latencies[0] > simulate_inference(
            make_spec(num_devices=2), 1).latencies[0]

    def test_input_distribution_adds_time(self):
        base = simulate_inference(make_spec(), 1).latencies[0]
        with_input = simulate_inference(make_spec(input_bytes=150528),
                                        1).latencies[0]
        assert with_input > base + 0.5  # 150 kB at 2 Mbps is ~0.6 s

    def test_two_submodels_one_device_serialize(self):
        devices = make_fleet(1)
        profiles = {f"m{i}": SubModelProfile(f"m{i}", 1e9, 64)
                    for i in range(2)}
        placement = {"m0": devices[0].device_id, "m1": devices[0].device_id}
        spec = DeploymentSpec(devices=devices, placement=placement,
                              profiles=profiles,
                              fusion_device=raspberry_pi_4b("f"),
                              fusion_flops=0.0)
        result = simulate_inference(spec, 1)
        compute = devices[0].compute_seconds(1e9)
        assert result.latencies[0] >= 2 * compute

    def test_unknown_placement_device_raises(self):
        spec = make_spec()
        spec.placement["m0"] = "ghost"
        with pytest.raises(KeyError):
            simulate_inference(spec, 1)

    def test_zero_samples_raises(self):
        with pytest.raises(ValueError):
            simulate_inference(make_spec(), 0)


class TestStreams:
    def test_batch_mode_pipelines_through_fifo(self):
        result = simulate_inference(make_spec(num_devices=1, flops=1e9), 5)
        # Sample k queues behind k earlier computations.
        assert result.latencies[-1] > result.latencies[0]

    def test_open_stream_with_slack_keeps_latency_flat(self):
        spec = make_spec(num_devices=1, flops=1e8)
        compute = spec.devices[0].compute_seconds(1e8)
        result = simulate_inference(spec, 5,
                                    arrival_interval=compute * 3)
        assert result.latencies[-1] == pytest.approx(result.latencies[0],
                                                     rel=1e-6)

    def test_throughput_reported(self):
        result = simulate_inference(make_spec(), 4, arrival_interval=1.0)
        assert result.throughput > 0

    def test_makespan_at_least_max_latency(self):
        result = simulate_inference(make_spec(), 3)
        assert result.makespan >= result.max_latency

    def test_busy_accounting_scales_with_samples(self):
        spec = make_spec(num_devices=1, flops=1e9)
        r1 = simulate_inference(spec, 1)
        r3 = simulate_inference(make_spec(num_devices=1, flops=1e9), 3)
        d = spec.devices[0].device_id
        assert r3.device_busy[d] == pytest.approx(3 * r1.device_busy[d])


class TestPaperLatencyShape:
    def test_fig4_endpoint_ten_devices(self):
        """ViT-Base split across 10 devices lands near the paper's 1.28 s."""
        from repro.core.experiments import latency_memory_curve
        from repro.models.vit import vit_base_config

        rows = latency_memory_curve(vit_base_config(num_classes=10),
                                    budget_mb=180, device_counts=(10,))
        assert rows[0]["latency_s"] == pytest.approx(1.28, rel=0.15)

    def test_single_device_latency_helper(self):
        from repro.models.vit import vit_base_config
        from repro.profiling import paper_flops

        latency = single_device_latency(raspberry_pi_4b("pi"),
                                        paper_flops(vit_base_config()))
        assert latency == pytest.approx(36.94, abs=0.01)


class TestReports:
    def test_utilization_bounded(self):
        from repro.edge.simulator import utilization_report

        result = simulate_inference(make_spec(num_devices=2), 4)
        util = utilization_report(result)
        assert all(0.0 <= u <= 1.0 for u in util.values())
        # Workers computed for a nonzero fraction of the makespan.
        assert util[make_spec().devices[0].device_id] > 0

    def test_energy_proportional_to_work(self):
        from repro.edge.simulator import energy_report

        spec = make_spec(num_devices=1, flops=1e9)
        r1 = simulate_inference(spec, 1)
        spec3 = make_spec(num_devices=1, flops=1e9)
        r3 = simulate_inference(spec3, 3)
        d = spec.devices[0].device_id
        e1 = energy_report(spec, r1)[d]
        e3 = energy_report(spec3, r3)[d]
        assert e3 == pytest.approx(3 * e1, rel=1e-6)

    def test_energy_includes_fusion_device(self):
        from repro.edge.simulator import energy_report

        spec = make_spec()
        result = simulate_inference(spec, 1)
        report = energy_report(spec, result)
        assert "pi-fusion" in report
        assert report["pi-fusion"] >= 0

    def test_fullscale_energy_plausible(self):
        """ViT-Base on a Pi: tens-to-hundreds of joules per inference."""
        from repro.edge.simulator import energy_report
        from repro.models.vit import vit_base_config
        from repro.profiling import paper_flops

        flops = float(paper_flops(vit_base_config()))
        devices = make_fleet(1)
        profiles = {"m0": SubModelProfile("m0", flops, 768)}
        spec = DeploymentSpec(devices=devices,
                              placement={"m0": devices[0].device_id},
                              profiles=profiles,
                              fusion_device=raspberry_pi_4b("pi-fusion"),
                              fusion_flops=0.0)
        result = simulate_inference(spec, 1)
        joules = energy_report(spec, result)[devices[0].device_id]
        assert 10 < joules < 1000
