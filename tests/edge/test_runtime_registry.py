"""Model-kind registry: any registered architecture can be served."""

import numpy as np
import pytest

from repro import nn
from repro.core.inference import extract_features
from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import (
    MODEL_KINDS,
    EdgeCluster,
    WorkerSpec,
    _build_model,
    register_model_kind,
)
from repro.serving.demo import _tiny_model


def make_spec(worker_id, model, kind):
    return WorkerSpec.from_model(
        worker_id, model, kind, flops_per_sample=1e6,
        device=DeviceModel(device_id=worker_id, macs_per_second=1e12),
        link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0))


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert {"vit", "vgg", "snn"} <= set(MODEL_KINDS)

    def test_unknown_kind_rejected_at_spec_build(self):
        model = _tiny_model("vit", 10, 8, np.random.default_rng(0))
        with pytest.raises(KeyError):
            make_spec("w", model, "transformerx")

    def test_unknown_kind_rejected_at_model_build(self):
        with pytest.raises(KeyError):
            _build_model("transformerx", {})

    def test_from_model_records_feature_dim(self):
        for kind in ("vit", "vgg", "snn"):
            model = _tiny_model(kind, 10, 8, np.random.default_rng(0))
            spec = make_spec("w", model, kind)
            assert spec.feature_dim == model.feature_dim()

    def test_register_roundtrip(self):
        sentinel = object()
        register_model_kind("test-kind", lambda d: d, lambda c: sentinel)
        try:
            assert _build_model("test-kind", {}) is sentinel
        finally:
            del MODEL_KINDS["test-kind"]


@pytest.mark.parametrize("kind", ["vgg", "snn"])
def test_non_vit_kinds_serve_through_cluster(kind):
    model = _tiny_model(kind, 10, 8, np.random.default_rng(3))
    x = np.random.default_rng(0).normal(size=(3, 3, 8, 8)).astype(np.float32)
    with EdgeCluster([make_spec("w0", model, kind)]) as cluster:
        features, _ = cluster.infer_features(x)
    local = extract_features(model, x)
    np.testing.assert_allclose(features["w0"], local, atol=1e-5)
