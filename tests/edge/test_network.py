"""Network-model tests, anchored to Section V-D's communication numbers."""

import pytest

from repro.edge.network import (
    LinkModel,
    RAW_IMAGE_BYTES,
    StarTopology,
    TC_CAP_BPS,
    communication_reduction,
    feature_bytes,
    gigabit_link,
    tc_capped_link,
    uniform_star,
)


class TestPaperAnchors:
    def test_raw_image_is_150528_bytes(self):
        assert RAW_IMAGE_BYTES == 150528

    def test_feature_bytes_single_device(self):
        # ViT-Base pruned to half heads: d'=384 -> 1536 B (paper Section V-D).
        assert feature_bytes(384) == 1536

    def test_feature_bytes_ten_devices(self):
        # d'=128 -> 512 B.
        assert feature_bytes(128) == 512

    def test_294x_reduction_at_ten_devices(self):
        assert communication_reduction(feature_bytes(128)) == pytest.approx(294.0)

    def test_transfer_time_under_2mbps_is_milliseconds(self):
        # The paper reports a max per-device communication time of 5.86 ms;
        # 1536 B over 2 Mbps is 6.1 ms of serialization.
        t = tc_capped_link().transfer_seconds(feature_bytes(384))
        assert 0.004 < t < 0.008


class TestLinkModel:
    def test_zero_bytes_is_free(self):
        assert tc_capped_link().transfer_seconds(0) == 0.0

    def test_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            tc_capped_link().transfer_seconds(-1)

    def test_serialization_time_linear(self):
        link = LinkModel(bandwidth_bps=1e6, overhead_seconds=0.0)
        assert link.transfer_seconds(1000) == pytest.approx(0.008)
        assert link.transfer_seconds(2000) == pytest.approx(0.016)

    def test_gigabit_much_faster_than_capped(self):
        payload = 10_000
        assert (gigabit_link().transfer_seconds(payload)
                < tc_capped_link().transfer_seconds(payload))

    def test_tc_cap_value(self):
        assert TC_CAP_BPS == 2_000_000
        assert tc_capped_link().bandwidth_bps == TC_CAP_BPS


class TestTopology:
    def test_uniform_star_links_all_devices(self):
        topo = uniform_star(["a", "b"])
        assert topo.transfer_seconds("a", 100) == topo.transfer_seconds("b", 100)

    def test_unknown_device_raises(self):
        topo = uniform_star(["a"])
        with pytest.raises(KeyError):
            topo.transfer_seconds("ghost", 10)

    def test_switch_latency_added(self):
        base = uniform_star(["a"])
        slow = StarTopology(device_links=base.device_links,
                            switch_latency_seconds=0.5)
        assert (slow.transfer_seconds("a", 100)
                == pytest.approx(base.transfer_seconds("a", 100) + 0.5))

    def test_heterogeneous_links(self):
        topo = StarTopology(device_links={"fast": gigabit_link(),
                                          "slow": tc_capped_link()})
        assert (topo.transfer_seconds("fast", 1000)
                < topo.transfer_seconds("slow", 1000))
