"""Vectorized star-topology scorer: dispatch, exactness, and errors."""

import numpy as np
import pytest

from repro.edge import fastsim
from repro.edge.device import DeviceModel
from repro.edge.simulator import (
    ENGINES,
    DeploymentSpec,
    SubModelProfile,
    simulate_inference,
)


def build_spec(n_devices=4, models_per_device=1, input_bytes=0,
               seed=7) -> DeploymentSpec:
    rng = np.random.default_rng(seed)
    devices = [DeviceModel(f"d{i}", macs_per_second=float(rng.uniform(5e8, 2e9)))
               for i in range(n_devices)]
    placement, profiles = {}, {}
    for i in range(n_devices):
        for j in range(models_per_device):
            mid = f"m{i}_{j}"
            placement[mid] = f"d{i}"
            profiles[mid] = SubModelProfile(
                mid, flops_per_sample=float(rng.uniform(1e7, 5e8)),
                feature_dim=int(rng.integers(32, 256)))
    return DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles,
                          fusion_device=DeviceModel("fusion"),
                          fusion_flops=1e8, input_bytes=input_bytes)


def assert_bit_identical(a, b):
    assert a.latencies == b.latencies
    assert a.makespan == b.makespan
    assert a.device_busy == b.device_busy
    assert a.link_busy == b.link_busy
    assert a.busy_segments == b.busy_segments


class TestDispatch:
    def test_auto_uses_vector_for_star_runs(self):
        result = simulate_inference(build_spec(), num_samples=4,
                                    arrival_interval=0.01)
        assert result.engine == "vector"

    def test_event_engine_is_forceable(self):
        result = simulate_inference(build_spec(), num_samples=4,
                                    engine="event")
        assert result.engine == "event"

    def test_auto_falls_back_on_streamed_input_shipping(self):
        # Input shipping + staggered arrivals interleaves the uplink in a
        # queue-dependent order: not closed-form, must use the event loop.
        spec = build_spec(input_bytes=4096)
        result = simulate_inference(spec, num_samples=4,
                                    arrival_interval=0.01)
        assert result.engine == "event"

    def test_vector_forced_on_inapplicable_run_raises(self):
        spec = build_spec(input_bytes=4096)
        with pytest.raises(ValueError, match="star pattern"):
            simulate_inference(spec, num_samples=4, arrival_interval=0.01,
                               engine="vector")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_inference(build_spec(), engine="warp")
        assert ENGINES == ("auto", "event", "vector")

    def test_batch_input_shipping_is_vectorizable(self):
        spec = build_spec(input_bytes=4096)
        assert fastsim.applicable(spec, [0.0, 0.0, 0.0])
        assert not fastsim.applicable(spec, [0.0, 0.1])


class TestExactEquivalence:
    @pytest.mark.parametrize("kwargs", [
        dict(num_samples=1),
        dict(num_samples=8),
        dict(num_samples=8, arrival_interval=0.005),
        dict(arrival_times=[0.0, 0.0, 0.001, 0.02, 0.02, 0.5]),
    ])
    def test_engines_bit_identical(self, kwargs):
        spec = build_spec(n_devices=5, models_per_device=2)
        event = simulate_inference(spec, engine="event", **kwargs)
        vector = simulate_inference(spec, engine="vector", **kwargs)
        assert vector.engine == "vector"
        assert_bit_identical(event, vector)

    def test_batch_input_shipping_bit_identical(self):
        spec = build_spec(n_devices=3, models_per_device=2, input_bytes=8192)
        event = simulate_inference(spec, num_samples=6, engine="event")
        vector = simulate_inference(spec, num_samples=6, engine="vector")
        assert_bit_identical(event, vector)

    def test_failed_devices_bit_identical(self):
        spec = build_spec(n_devices=6)
        for failed in ({"d0"}, {"d0", "d4"},
                       {f"d{i}" for i in range(6)}):
            event = simulate_inference(spec, num_samples=5,
                                       arrival_interval=0.002,
                                       failed_devices=failed, engine="event")
            vector = simulate_inference(spec, num_samples=5,
                                        arrival_interval=0.002,
                                        failed_devices=failed,
                                        engine="vector")
            assert_bit_identical(event, vector)

    def test_unknown_placement_device_raises(self):
        spec = build_spec(n_devices=2)
        spec.placement["ghost"] = "nope"
        with pytest.raises(KeyError):
            simulate_inference(spec, engine="vector")


class TestArrivalTimes:
    def test_trace_drives_the_schedule(self):
        spec = build_spec(n_devices=2)
        arrivals = [0.0, 1.0, 5.0]
        result = simulate_inference(spec, arrival_times=arrivals)
        assert len(result.latencies) == 3
        # A widely-spaced trace cannot queue: every sample sees the same
        # unloaded pipeline, so all latencies are identical.
        assert result.latencies[1] == result.latencies[2]

    def test_rejects_both_interval_and_times(self):
        with pytest.raises(ValueError, match="not both"):
            simulate_inference(build_spec(), arrival_interval=0.1,
                               arrival_times=[0.0])

    @pytest.mark.parametrize("times", [[], [0.5, 0.1], [-1.0, 0.0],
                                       [0.0, float("nan")],
                                       [0.0, float("inf")]])
    def test_rejects_invalid_traces(self, times):
        with pytest.raises(ValueError):
            simulate_inference(build_spec(), arrival_times=times)


class TestResultSegments:
    def test_busy_within_matches_totals(self):
        spec = build_spec(n_devices=3)
        result = simulate_inference(spec, num_samples=4,
                                    arrival_interval=0.003)
        for device_id, busy in result.device_busy.items():
            horizon = result.makespan + 1.0
            assert result.busy_within(f"cpu:{device_id}", horizon) == \
                pytest.approx(busy)
        assert result.utilization("cpu:d0", result.makespan) <= 1.0
        assert result.utilization("cpu:d0", 0.0) == 0.0

    def test_merge_segments_drops_zero_length_and_joins_touching(self):
        starts = np.array([0.0, 1.0, 2.0, 5.0])
        finishes = np.array([1.0, 2.0, 2.0, 6.0])
        assert fastsim._merge_segments(starts, finishes) == \
            [(0.0, 2.0), (5.0, 6.0)]
