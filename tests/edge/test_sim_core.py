"""Discrete-event kernel tests."""

import pytest

from repro.edge.sim_core import Barrier, FifoResource, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_ties_broken_by_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [3.0]

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]

    def test_run_until_advances_clock_to_horizon(self):
        # Regression: run(until=T) used to leave self.now at the last
        # executed event, so horizon statistics and follow-up scheduling
        # saw a stale clock.
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        # schedule(delay) is now relative to the horizon, not the last event.
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run(until=6.0)
        assert fired == [6.0]

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_run_until_never_rewinds_clock(self):
        sim = Simulator()
        sim.schedule(4.0, lambda: None)
        sim.run()
        sim.run(until=2.0)
        assert sim.now == 4.0


class TestFifoResource:
    def test_sequential_requests_queue(self):
        sim = Simulator()
        res = FifoResource(sim, "cpu")
        assert res.acquire(2.0) == 2.0
        assert res.acquire(3.0) == 5.0  # queued behind the first

    def test_acquire_after_idle_starts_now(self):
        sim = Simulator()
        res = FifoResource(sim, "cpu")
        res.acquire(1.0)
        done = []
        sim.schedule(5.0, lambda: done.append(res.acquire(1.0)))
        sim.run()
        assert done == [6.0]

    def test_busy_accounting(self):
        sim = Simulator()
        res = FifoResource(sim, "cpu")
        res.acquire(2.0)
        res.acquire(3.0)
        assert res.busy_seconds == 5.0
        assert res.served == 2

    def test_utilization(self):
        sim = Simulator()
        res = FifoResource(sim, "cpu")
        res.acquire(5.0)
        assert res.utilization(10.0) == pytest.approx(0.5)
        assert res.utilization(0.0) == 0.0

    def test_utilization_clamps_work_past_horizon(self):
        # Regression: acquire() books the resource into the future, but
        # only the part of the service inside the horizon may count.
        sim = Simulator()
        res = FifoResource(sim, "cpu")
        res.acquire(4.0)               # busy [0, 4]
        assert res.utilization(2.0) == pytest.approx(1.0)
        assert res.busy_within(2.0) == pytest.approx(2.0)
        assert res.busy_seconds == pytest.approx(4.0)  # totals unchanged

    def test_utilization_ignores_segments_beyond_horizon(self):
        sim = Simulator()
        res = FifoResource(sim, "cpu")
        res.acquire(2.0)               # busy [0, 2]
        done = []
        sim.schedule(6.0, lambda: done.append(res.acquire(3.0)))  # busy [6, 9]
        sim.run()
        # Horizon 4 covers only the first segment; the old code counted
        # all 5 booked seconds and reported 5/4 -> clamped 1.0.
        assert res.utilization(4.0) == pytest.approx(0.5)
        # Horizon 7 sees 2 + 1 busy seconds.
        assert res.utilization(7.0) == pytest.approx(3.0 / 7.0)

    def test_back_to_back_acquires_merge_segments(self):
        sim = Simulator()
        res = FifoResource(sim, "cpu")
        res.acquire(2.0)
        res.acquire(3.0)               # queued: busy [0, 5] contiguously
        assert res.busy_within(4.0) == pytest.approx(4.0)
        assert res.utilization(10.0) == pytest.approx(0.5)

    def test_negative_service_raises(self):
        with pytest.raises(ValueError):
            FifoResource(Simulator(), "cpu").acquire(-1.0)


class TestBarrier:
    def test_fires_after_expected_arrivals(self):
        fired = []
        barrier = Barrier(3, lambda: fired.append(True))
        barrier.arrive()
        barrier.arrive()
        assert not fired
        barrier.arrive()
        assert fired == [True]

    def test_late_arrival_tolerated_and_counted(self):
        # Regression: a straggler reply arriving after the barrier fired
        # (degraded fusion already proceeded) used to raise RuntimeError
        # and kill the event loop.
        fired = []
        barrier = Barrier(1, lambda: fired.append(True))
        barrier.arrive()
        barrier.arrive()
        barrier.arrive()
        assert fired == [True]         # callback ran exactly once
        assert barrier.late == 2
        assert barrier.arrived == 1

    def test_zero_expected_raises(self):
        with pytest.raises(ValueError):
            Barrier(0, lambda: None)
