"""Feature wire-codec round trips, error bounds, and byte accounting."""

import numpy as np
import pytest

from repro.edge.codec import (
    CODECS,
    EncodedFeatures,
    FeatureCodec,
    codec_names,
    get_codec,
    register_codec,
)

RNG = np.random.default_rng(7)
FEATURES = RNG.normal(scale=3.0, size=(17, 33)).astype(np.float32)


class TestRaw32:
    def test_round_trip_is_exact(self):
        codec = get_codec("raw32")
        out = codec.decode(codec.encode(FEATURES))
        np.testing.assert_array_equal(out, FEATURES)
        assert out.dtype == np.float32

    def test_bytes_are_4_per_value(self):
        encoded = get_codec("raw32").encode(FEATURES)
        assert encoded.nbytes == FEATURES.size * 4
        assert get_codec("raw32").estimate_bytes(33, 17) == encoded.nbytes

    def test_non_float32_input_is_canonicalized(self):
        codec = get_codec("raw32")
        out = codec.decode(codec.encode(FEATURES.astype(np.float64)))
        np.testing.assert_array_equal(out, FEATURES)


class TestF16:
    def test_round_trip_error_bound(self):
        codec = get_codec("f16")
        out = codec.decode(codec.encode(FEATURES))
        # Half precision: ~2^-11 relative error.
        np.testing.assert_allclose(out, FEATURES, rtol=1e-3, atol=1e-4)

    def test_halves_the_bytes(self):
        encoded = get_codec("f16").encode(FEATURES)
        assert encoded.nbytes == FEATURES.size * 2


class TestQ8:
    def test_error_bounded_by_half_a_step(self):
        codec = get_codec("q8")
        out = codec.decode(codec.encode(FEATURES))
        step = (FEATURES.max(axis=1) - FEATURES.min(axis=1)) / 255.0
        bound = step[:, None] * 0.5 + 1e-5
        assert (np.abs(out - FEATURES) <= bound).all()

    def test_constant_rows_decode_exactly(self):
        codec = get_codec("q8")
        constant = np.full((3, 9), 2.5, dtype=np.float32)
        np.testing.assert_array_equal(codec.decode(codec.encode(constant)),
                                      constant)

    def test_bytes_one_per_value_plus_row_header(self):
        encoded = get_codec("q8").encode(FEATURES)
        n, d = FEATURES.shape
        assert encoded.nbytes == n * (d + 8)
        assert get_codec("q8").estimate_bytes(d, n) == encoded.nbytes

    def test_strictly_smaller_than_f16_and_raw32(self):
        sizes = {name: get_codec(name).encode(FEATURES).nbytes
                 for name in ("raw32", "f16", "q8")}
        assert sizes["q8"] < sizes["f16"] < sizes["raw32"]


class TestZlibWrapper:
    def test_round_trip_matches_base(self):
        for base in ("raw32", "f16", "q8"):
            wrapped = get_codec(base + "+zlib")
            plain = get_codec(base)
            np.testing.assert_array_equal(
                wrapped.decode(wrapped.encode(FEATURES)),
                plain.decode(plain.encode(FEATURES)))

    def test_compresses_redundant_payloads(self):
        redundant = np.tile(FEATURES[:1], (16, 1))
        assert get_codec("raw32+zlib").encode(redundant).nbytes \
            < get_codec("raw32").encode(redundant).nbytes

    def test_estimate_is_the_conservative_base_size(self):
        assert get_codec("q8+zlib").estimate_bytes(33, 17) \
            == get_codec("q8").estimate_bytes(33, 17)


class TestRegistry:
    def test_unknown_codec_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown feature codec"):
            get_codec("brotli")

    def test_codec_names_cover_zlib_variants(self):
        names = codec_names()
        assert {"raw32", "f16", "q8", "q8+zlib"} <= set(names)
        assert all(not n.endswith("+zlib")
                   for n in codec_names(include_zlib=False))

    def test_custom_codec_registers_and_resolves(self):
        class Doubling(FeatureCodec):
            name = "doubling"

        register_codec(Doubling())
        try:
            assert get_codec("doubling").name == "doubling"
            assert get_codec("doubling+zlib").name == "doubling+zlib"
        finally:
            CODECS.pop("doubling", None)
            CODECS.pop("doubling+zlib", None)

    def test_non_2d_input_rejected(self):
        with pytest.raises(ValueError, match=r"\(N, D\)"):
            get_codec("raw32").encode(np.zeros((2, 3, 4), dtype=np.float32))

    def test_encoded_features_reports_wire_bytes(self):
        encoded = EncodedFeatures("raw32", (1, 2), b"12345678")
        assert encoded.nbytes == 8
