"""Transport-layer tests: the same cluster contract over every substrate.

``inprocess`` and ``tcp`` get the full treatment here; ``multiprocess``
(the default) is already exercised by the rest of the edge suite, so it
only appears in the shared contract matrix.
"""

import time

import numpy as np
import pytest

from repro import nn
from repro.edge.codec import get_codec
from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.edge.transport import (
    InProcessTransport,
    TcpTransport,
    Transport,
    get_transport,
)
from repro.models.vit import ViTConfig, VisionTransformer

X = np.random.default_rng(0).normal(size=(3, 3, 8, 8)).astype(np.float32)


def tiny_model(seed=0):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3,
                    depth=1, embed_dim=8, num_heads=2)
    return VisionTransformer(cfg, rng=np.random.default_rng(seed))


def make_worker(worker_id, seed=0, codec="raw32"):
    model = tiny_model(seed)
    spec = WorkerSpec.from_model(
        worker_id, model, "vit", flops_per_sample=1e6,
        device=DeviceModel(device_id=worker_id, macs_per_second=1e12),
        link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0),
        codec=codec)
    return spec, model


def local_features(model, x):
    model.eval()
    with nn.no_grad():
        return model.forward_features(nn.Tensor(x)).data


class TestGetTransport:
    def test_resolves_names(self):
        assert get_transport("inprocess").name == "inprocess"
        assert get_transport("tcp").name == "tcp"
        assert get_transport(None).name == "multiprocess"

    def test_passes_instances_through(self):
        transport = InProcessTransport()
        assert get_transport(transport) is transport

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown transport"):
            get_transport("carrier-pigeon")


@pytest.mark.parametrize("transport", ["inprocess", "multiprocess", "tcp"])
class TestClusterContract:
    """Every transport honours the same EdgeCluster surface."""

    def test_features_match_local_models(self, transport):
        specs_models = [make_worker(f"w{i}", seed=i) for i in range(2)]
        specs = [sm[0] for sm in specs_models]
        with EdgeCluster(specs, transport=transport) as cluster:
            features, timing = cluster.infer_features(X)
            for i, (_, model) in enumerate(specs_models):
                np.testing.assert_allclose(features[f"w{i}"],
                                           local_features(model, X),
                                           atol=1e-5)
            for report in timing.per_worker.values():
                assert report["bytes_out"] > 0
                assert report["bytes_in"] == X.nbytes

    def test_restart_after_shutdown(self, transport):
        spec, _ = make_worker("r0")
        cluster = EdgeCluster([spec], transport=transport)
        with cluster:
            cluster.infer_features(X)
        with cluster:                  # same cluster object, fresh workers
            cluster.infer_features(X)

    def test_kill_is_detected_and_survivors_serve(self, transport):
        specs = [make_worker(f"w{i}", seed=i)[0] for i in range(2)]
        cluster = EdgeCluster(specs, transport=transport)
        cluster.start()
        try:
            cluster.kill_worker("w0")
            deadline = time.monotonic() + 5.0
            while cluster.is_alive("w0") and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not cluster.is_alive("w0")
            assert cluster.submit("w1", 1, X)
            got = False
            deadline = time.monotonic() + 10.0
            while not got and time.monotonic() < deadline:
                got = any(m[0] == "features" and m[1] == 1
                          for _, m in cluster.poll(0.2))
            assert got, "surviving worker never answered"
        finally:
            cluster.shutdown()

    def test_submit_to_killed_worker_marks_down(self, transport):
        spec, _ = make_worker("solo")
        cluster = EdgeCluster([spec], transport=transport)
        cluster.start()
        try:
            cluster.kill_worker("solo")
            deadline = time.monotonic() + 5.0
            while cluster.is_alive("solo") and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not cluster.submit("solo", 1, X)
            assert "solo" in cluster.down_workers
        finally:
            cluster.shutdown()


class TestFloat32Canonicalization:
    """Regression: a float64 caller must not double wire bytes/time."""

    def test_float64_input_costs_float32_bytes(self):
        spec, _ = make_worker("w")
        with EdgeCluster([spec], transport="inprocess") as cluster:
            x64 = X.astype(np.float64)
            _, t32 = cluster.infer_features(X)
            _, t64 = cluster.infer_features(x64)
            assert t64.per_worker["w"]["bytes_in"] == X.nbytes
            assert t64.per_worker["w"]["emulated_transfer_s"] \
                == t32.per_worker["w"]["emulated_transfer_s"]

    def test_int_input_is_accepted_as_float32(self):
        spec, model = make_worker("w")
        with EdgeCluster([spec], transport="inprocess") as cluster:
            ints = np.zeros((1, 3, 8, 8), dtype=np.int64)
            features, _ = cluster.infer_features(ints)
            np.testing.assert_allclose(
                features["w"],
                local_features(model, ints.astype(np.float32)), atol=1e-5)


class TestCodecOnTheWire:
    def test_q8_shrinks_bytes_and_transfer_time(self):
        results = {}
        for codec in ("raw32", "q8"):
            spec, _ = make_worker("w", codec=codec)
            with EdgeCluster([spec], transport="inprocess") as cluster:
                _, timing = cluster.infer_features(X)
                results[codec] = timing.per_worker["w"]
        assert results["q8"]["bytes_out"] < results["raw32"]["bytes_out"]
        assert results["q8"]["emulated_transfer_s"] \
            < results["raw32"]["emulated_transfer_s"]

    def test_lossy_features_decode_within_codec_bound(self):
        spec, model = make_worker("w", codec="q8+zlib")
        with EdgeCluster([spec], transport="inprocess") as cluster:
            features, _ = cluster.infer_features(X)
        local = local_features(model, X)
        codec = get_codec("q8+zlib")
        expected = codec.decode(codec.encode(local))
        np.testing.assert_allclose(features["w"], expected, atol=1e-6)

    def test_unknown_codec_rejected_at_spec_build(self):
        with pytest.raises(KeyError, match="unknown feature codec"):
            make_worker("w", codec="nope")


class TestInProcessShutdownLatency:
    def test_shutdown_after_kill_does_not_stall(self):
        """Regression: a killed worker's closed mailbox must not make the
        shutdown drain wait out its full per-worker deadline."""
        specs = [make_worker(f"w{i}", seed=i)[0] for i in range(2)]
        cluster = EdgeCluster(specs, transport="inprocess")
        cluster.start()
        cluster.kill_worker("w0")
        start = time.monotonic()
        cluster.shutdown()
        assert time.monotonic() - start < 2.0


class TestStartupFailures:
    def test_runtime_registered_codec_fails_loudly_on_spawn(self):
        """A codec registered only at runtime is unknown inside a spawned
        process; the worker must report a typed startup failure, not die
        into a bare EOFError."""
        from repro.edge.codec import CODECS, FeatureCodec, register_codec

        class Runtime(FeatureCodec):
            name = "runtime-only"

        register_codec(Runtime())
        try:
            spec, _ = make_worker("w", codec="runtime-only")
            cluster = EdgeCluster([spec], transport="multiprocess")
            with pytest.raises(RuntimeError,
                               match="failed to start.*unknown feature "
                                     "codec"):
                cluster.start()
        finally:
            CODECS.pop("runtime-only", None)
            cluster.shutdown()

    def test_runtime_codec_works_on_inprocess_transport(self):
        from repro.edge.codec import CODECS, FeatureCodec, register_codec

        class Runtime(FeatureCodec):
            name = "runtime-only"

        register_codec(Runtime())
        try:
            spec, model = make_worker("w", codec="runtime-only")
            with EdgeCluster([spec], transport="inprocess") as cluster:
                features, _ = cluster.infer_features(X)
                np.testing.assert_allclose(features["w"],
                                           local_features(model, X),
                                           atol=1e-5)
        finally:
            CODECS.pop("runtime-only", None)


class TestTcpTransport:
    def test_accept_times_out_instead_of_hanging(self):
        transport = TcpTransport(accept_timeout_s=0.3)
        listener = transport._ensure_listener()
        start = time.monotonic()
        with pytest.raises(TimeoutError, match="no TCP dial-back"):
            transport._accept(listener)    # nobody ever dials back
        assert time.monotonic() - start < 5.0
        transport.close()

    def test_listener_recycles_after_close(self):
        transport = TcpTransport()
        spec, _ = make_worker("w")
        cluster = EdgeCluster([spec], transport=transport)
        with cluster:
            first_address = transport.address
            cluster.infer_features(X)
        assert transport.address is None   # shutdown closed the listener
        with cluster:                      # a fresh listener is bound
            assert transport.address is not None
            assert transport.address != first_address \
                or transport.address[1] != 0
            cluster.infer_features(X)

    def test_is_a_transport(self):
        assert isinstance(TcpTransport(), Transport)
